// Tests for the observability subsystem (src/obs): trace-event JSON
// round-trip, the telescoping stage-latency invariant, sampling consistency,
// timing neutrality, and NDC decision-audit completeness. Structural unit
// tests run in every build; end-to-end assertions that need live
// instrumentation skip themselves when observability is compiled out
// (NDC_OBS=OFF).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "harness/cell.hpp"
#include "harness/json.hpp"
#include "metrics/experiment.hpp"
#include "obs/obs.hpp"

namespace {

using ndc::harness::json::Parse;
using ndc::harness::json::Value;
using ndc::metrics::Experiment;
using ndc::metrics::Scheme;
using ndc::obs::DecisionEntry;
using ndc::obs::DecisionKind;
using ndc::obs::DecisionLog;
using ndc::obs::Observability;
using ndc::obs::ObsOptions;
using ndc::obs::Outcome;
using ndc::obs::RequestRecord;
using ndc::obs::Stage;
using ndc::obs::TraceSink;

// ------------------------------------------------------------ unit: sink ---

TEST(TraceSink, JsonRoundTripsThroughHarnessParser) {
  TraceSink sink;
  sink.Complete("l1.lookup", 10, 5, 3, 42);
  sink.Complete("noc.hop", 15, 7, 3, 42, "link", 9);
  sink.Instant("ndc.meet", 30, 2, 7, "loc", 1);

  Value v;
  std::string err;
  ASSERT_TRUE(Parse(sink.ToJson(), &v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  const Value* evs = v.Find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_TRUE(evs->is_array());
  ASSERT_EQ(evs->arr.size(), sink.events().size());

  for (std::size_t i = 0; i < evs->arr.size(); ++i) {
    const Value& e = evs->arr[i];
    const ndc::obs::TraceEvent& src = sink.events()[i];
    ASSERT_TRUE(e.is_object());
    // Chrome trace-event required keys.
    for (const char* key : {"ph", "ts", "pid", "tid", "name"}) {
      EXPECT_NE(e.Find(key), nullptr) << "event " << i << " missing " << key;
    }
    EXPECT_EQ(e.Find("ts")->AsU64(), src.ts);
    EXPECT_EQ(e.Find("tid")->AsU64(), static_cast<std::uint64_t>(src.tid));
    EXPECT_EQ(e.Find("name")->str, src.name);
    if (src.ph == 'X') {
      ASSERT_NE(e.Find("dur"), nullptr);
      EXPECT_EQ(e.Find("dur")->AsU64(), src.dur);
    }
    if (src.token != 0) {
      const Value* a = e.Find("args");
      ASSERT_NE(a, nullptr);
      EXPECT_EQ(a->Find("token")->AsU64(), src.token);
    }
  }
}

TEST(TraceSink, CapsEventsAndCountsDropped) {
  TraceSink sink(2);
  sink.Complete("a", 0, 1, 0, 0);
  sink.Complete("b", 1, 1, 0, 0);
  sink.Complete("c", 2, 1, 0, 0);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 1u);
}

// ---------------------------------------------------------- unit: tracer ---

TEST(RequestTracer, TelescopingStampsSumToEndToEnd) {
  TraceSink sink;
  ndc::obs::RequestTracer tracer(&sink);
  std::uint64_t t = tracer.Begin(0, 0, 0x40, 100);
  ASSERT_NE(t, 0u);
  tracer.Stamp(t, Stage::kL1Miss, 102);
  tracer.Stamp(t, Stage::kReqAtHome, 150);
  tracer.Stamp(t, Stage::kL2Hit, 170);
  tracer.Finish(t, Stage::kDeliver, 220);

  const RequestRecord& r = tracer.records()[0];
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.EndToEnd(), 120u);
  std::uint64_t stage_sum = 0;
  for (std::size_t i = 1; i < r.stamps.size(); ++i) {
    stage_sum += r.stamps[i].at - r.stamps[i - 1].at;
  }
  EXPECT_EQ(stage_sum, r.EndToEnd());
  EXPECT_EQ(tracer.total_end_to_end(), 120u);
  std::uint64_t agg_sum = 0;
  for (int i = 0; i < ndc::obs::kNumStages; ++i) agg_sum += tracer.aggregates()[i].cycles;
  EXPECT_EQ(agg_sum, tracer.total_end_to_end());
}

TEST(RequestTracer, FinishIsIdempotent) {
  TraceSink sink;
  ndc::obs::RequestTracer tracer(&sink);
  std::uint64_t t = tracer.Begin(0, 0, 0x40, 0);
  tracer.Finish(t, Stage::kL1Hit, 2);
  tracer.Finish(t, Stage::kNdcConsumed, 9);  // late duplicate: ignored
  EXPECT_EQ(tracer.finished(), 1u);
  EXPECT_EQ(tracer.records()[0].EndToEnd(), 2u);
}

TEST(RequestTracer, SamplePeriodAdmitsEveryNth) {
  TraceSink sink;
  ndc::obs::RequestTracer tracer(&sink, {/*sample_period=*/3, 1u << 20, false, false});
  int admitted = 0;
  for (int i = 0; i < 9; ++i) {
    if (tracer.Begin(0, static_cast<std::uint32_t>(i), 0, 0) != 0) ++admitted;
  }
  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(tracer.seen(), 9u);
  EXPECT_EQ(tracer.traced(), 3u);
  // The first load is always admitted (slot 0, 3, 6).
  EXPECT_EQ(tracer.records()[0].slot, 0u);
  EXPECT_EQ(tracer.records()[1].slot, 3u);
  EXPECT_EQ(tracer.records()[2].slot, 6u);
}

TEST(RequestTracer, EndRunClosesOpenRecordsAsUnfinished) {
  TraceSink sink;
  ndc::obs::RequestTracer tracer(&sink);
  tracer.Begin(0, 0, 0, 5);
  tracer.EndRun(50);
  EXPECT_EQ(tracer.unfinished(), 1u);
  EXPECT_EQ(tracer.finished(), 0u);
  // Unfinished requests are excluded from the stage aggregates.
  for (int i = 0; i < ndc::obs::kNumStages; ++i) {
    EXPECT_EQ(tracer.aggregates()[i].cycles, 0u);
  }
}

// ---------------------------------------------------- unit: decision log ---

TEST(DecisionLog, NonOffloadKindsResolveConventionalImmediately) {
  DecisionLog log;
  log.Record(1, 0, 0, DecisionKind::kLocalL1Skip, -1, 10);
  log.Record(2, 0, 1, DecisionKind::kDeclined, -1, 11);
  log.Record(3, 0, 2, DecisionKind::kPlanInfeasible, -1, 12);
  EXPECT_EQ(log.outcome_count(Outcome::kConventional), 3u);
  EXPECT_EQ(log.unresolved(), 0u);
}

TEST(DecisionLog, OffloadResolvesOnceFirstWins) {
  DecisionLog log;
  log.Record(7, 1, 0, DecisionKind::kOffload, 2, 10);
  EXPECT_EQ(log.unresolved(), 1u);
  log.Resolve(7, Outcome::kNdcSuccess, 2, 40);
  log.Resolve(7, Outcome::kFallbackTimeout, -1, 50);  // loses the race: ignored
  EXPECT_EQ(log.outcome_count(Outcome::kNdcSuccess), 1u);
  EXPECT_EQ(log.outcome_count(Outcome::kFallbackTimeout), 0u);
  EXPECT_EQ(log.entries()[0].resolved_at, 40u);
}

TEST(DecisionLog, DuplicateUidsAndUnknownResolvesAreIgnored) {
  DecisionLog log;
  log.Record(5, 0, 0, DecisionKind::kOffload, 1, 1);
  log.Record(5, 0, 0, DecisionKind::kDeclined, -1, 2);  // dup uid: ignored
  log.Resolve(99, Outcome::kNdcSuccess, 1, 3);          // unknown uid: ignored
  EXPECT_EQ(log.entries().size(), 1u);
  EXPECT_EQ(log.kind_count(DecisionKind::kOffload), 1u);
  EXPECT_EQ(log.kind_count(DecisionKind::kDeclined), 0u);
}

TEST(DecisionLog, EndRunMarksUnresolvedAsNeverMet) {
  DecisionLog log;
  log.Record(1, 0, 0, DecisionKind::kOffload, 3, 5);
  log.EndRun(100);
  EXPECT_EQ(log.unresolved(), 0u);
  EXPECT_EQ(log.outcome_count(Outcome::kFallbackNeverMet), 1u);
}

TEST(DecisionLog, JsonlHasOneValidObjectPerEntry) {
  DecisionLog log;
  log.Record(1, 2, 3, DecisionKind::kOffload, 1, 5);
  log.Resolve(1, Outcome::kNdcSuccess, 1, 9);
  log.Record(2, 0, 0, DecisionKind::kDeclined, -1, 6);
  std::string jsonl = log.ToJsonl();
  std::size_t lines = 0, pos = 0, next;
  while ((next = jsonl.find('\n', pos)) != std::string::npos) {
    Value v;
    std::string err;
    ASSERT_TRUE(Parse(jsonl.substr(pos, next - pos), &v, &err)) << err;
    ASSERT_TRUE(v.is_object());
    EXPECT_NE(v.Find("uid"), nullptr);
    EXPECT_NE(v.Find("kind"), nullptr);
    EXPECT_NE(v.Find("outcome"), nullptr);
    ++lines;
    pos = next + 1;
  }
  EXPECT_EQ(lines, log.entries().size());
}

// -------------------------------------------------------- unit: registry ---

TEST(Registry, HandlesAreStableAndKindMismatchIsNull) {
  ndc::obs::Registry reg;
  ndc::obs::Counter* c = reg.counter("noc.link.0/traversals");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reg.counter("noc.link.0/traversals"), c);  // get-or-create
  EXPECT_EQ(reg.gauge("noc.link.0/traversals"), nullptr);      // kind mismatch
  EXPECT_EQ(reg.histogram("noc.link.0/traversals"), nullptr);  // kind mismatch
  c->Add(3);
  auto snap = reg.ScalarSnapshot();
  EXPECT_EQ(snap.at("noc.link.0/traversals"), 3u);
}

// ----------------------------------------------------------- unit: phase ---

TEST(PhaseProfiler, SnapshotDeltaReportsOnlyActivePhases) {
  ndc::obs::PhaseProfiler prof;
  auto base = prof.Take();
  prof.Add(ndc::obs::Phase::kSimulate, 7'000'000);  // 7 ms
  auto delta = prof.Take().DeltaMsSince(base);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta.at("simulate"), 7u);
}

// ------------------------------------------------- end-to-end (obs only) ---

class ObsEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!ndc::obs::kObsEnabled) {
      GTEST_SKIP() << "observability compiled out (NDC_OBS=OFF)";
    }
  }

  /// Runs (workload, scheme) at test scale with `ob` attached.
  static ndc::metrics::SchemeResult RunWith(Observability* ob, const std::string& workload,
                                            Scheme scheme) {
    Experiment exp(workload, ndc::workloads::Scale::kTest, ndc::arch::ArchConfig{});
    exp.set_obs(ob);
    return exp.Run(scheme);
  }
};

TEST_F(ObsEndToEnd, StageLatenciesTelescopeToEndToEndPerRequestAndAggregate) {
  Observability ob;
  RunWith(&ob, "md", Scheme::kOracle);

  ASSERT_GT(ob.tracer.finished(), 0u);
  for (const RequestRecord& r : ob.tracer.records()) {
    if (!r.finished) continue;
    ASSERT_GE(r.stamps.size(), 2u) << "token " << r.token;
    EXPECT_EQ(r.stamps.front().stage, Stage::kIssue);
    std::uint64_t sum = 0;
    for (std::size_t i = 1; i < r.stamps.size(); ++i) {
      ASSERT_GE(r.stamps[i].at, r.stamps[i - 1].at) << "token " << r.token;
      sum += r.stamps[i].at - r.stamps[i - 1].at;
    }
    EXPECT_EQ(sum, r.EndToEnd()) << "token " << r.token;
  }
  std::uint64_t agg = 0;
  for (int i = 0; i < ndc::obs::kNumStages; ++i) agg += ob.tracer.aggregates()[i].cycles;
  EXPECT_EQ(agg, ob.tracer.total_end_to_end());
}

TEST_F(ObsEndToEnd, TraceJsonFromRealRunIsValidChromeTraceEvent) {
  Observability ob;
  RunWith(&ob, "md", Scheme::kOracle);
  ASSERT_GT(ob.sink.size(), 0u);

  Value v;
  std::string err;
  ASSERT_TRUE(Parse(ob.sink.ToJson(), &v, &err)) << err;
  const Value* evs = v.Find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_EQ(evs->arr.size(), ob.sink.size());
  for (const Value& e : evs->arr) {
    for (const char* key : {"ph", "ts", "pid", "tid", "name"}) {
      ASSERT_NE(e.Find(key), nullptr);
    }
    if (e.Find("ph")->str == "X") {
      ASSERT_NE(e.Find("dur"), nullptr);
    }
  }
}

TEST_F(ObsEndToEnd, SampledRecordsAreExactSubsetOfFullTrace) {
  Observability full;
  RunWith(&full, "md", Scheme::kOracle);

  ObsOptions oo;
  oo.sample_period = 7;
  Observability sampled(oo);
  RunWith(&sampled, "md", Scheme::kOracle);

  EXPECT_EQ(sampled.tracer.seen(), full.tracer.seen());
  ASSERT_GT(sampled.tracer.traced(), 0u);
  EXPECT_LT(sampled.tracer.traced(), full.tracer.traced());

  // Key every full-run record by identity; a sampled record's stamps must
  // match the corresponding full-run record exactly (stamping is passive,
  // the simulation is deterministic).
  std::map<std::tuple<int, std::uint32_t, std::uint64_t>, const RequestRecord*> by_key;
  for (const RequestRecord& r : full.tracer.records()) {
    by_key[{r.core, r.slot, r.addr}] = &r;
  }
  for (const RequestRecord& s : sampled.tracer.records()) {
    auto it = by_key.find({s.core, s.slot, s.addr});
    ASSERT_NE(it, by_key.end()) << "sampled-only record, slot " << s.slot;
    const RequestRecord& f = *it->second;
    ASSERT_EQ(s.stamps.size(), f.stamps.size());
    for (std::size_t i = 0; i < s.stamps.size(); ++i) {
      EXPECT_EQ(s.stamps[i].stage, f.stamps[i].stage);
      EXPECT_EQ(s.stamps[i].at, f.stamps[i].at);
    }
  }
}

TEST_F(ObsEndToEnd, TracingIsTimingNeutral) {
  Experiment plain("md", ndc::workloads::Scale::kTest, ndc::arch::ArchConfig{});
  ndc::sim::Cycle off = plain.Run(Scheme::kOracle).run.makespan;

  Observability ob;
  ndc::sim::Cycle on = RunWith(&ob, "md", Scheme::kOracle).run.makespan;
  EXPECT_EQ(on, off) << "attaching observation must not perturb simulated time";
}

TEST_F(ObsEndToEnd, OracleDecisionAuditAccountsForEveryCandidate) {
  Observability ob;
  ndc::metrics::SchemeResult r = RunWith(&ob, "md", Scheme::kOracle);

  // Every candidate the machine counted appears exactly once in the log.
  ASSERT_GT(r.run.candidates, 0u);
  EXPECT_EQ(ob.decisions.entries().size(), r.run.candidates);
  std::set<std::uint64_t> uids;
  for (const DecisionEntry& e : ob.decisions.entries()) uids.insert(e.uid);
  EXPECT_EQ(uids.size(), ob.decisions.entries().size());

  // Kind tallies are consistent with the machine's own counters.
  EXPECT_EQ(ob.decisions.kind_count(DecisionKind::kOffload), r.run.offloads);
  EXPECT_EQ(ob.decisions.kind_count(DecisionKind::kLocalL1Skip), r.run.local_l1_skips);

  // Every entry is terminally resolved: offloads to success-or-fallback,
  // everything else to conventional.
  EXPECT_EQ(ob.decisions.unresolved(), 0u);
  std::uint64_t offload_outcomes = 0;
  for (const DecisionEntry& e : ob.decisions.entries()) {
    if (e.kind == DecisionKind::kOffload) {
      EXPECT_NE(e.outcome, Outcome::kConventional);
      EXPECT_NE(e.outcome, Outcome::kUnresolved);
      ++offload_outcomes;
    } else {
      EXPECT_EQ(e.outcome, Outcome::kConventional);
    }
  }
  EXPECT_EQ(offload_outcomes, r.run.offloads);
  EXPECT_EQ(ob.decisions.outcome_count(Outcome::kNdcSuccess), r.run.ndc_success);
}

TEST_F(ObsEndToEnd, CompiledSchemeAuditsDecisionsToo) {
  Observability ob;
  Experiment exp("md", ndc::workloads::Scale::kTest, ndc::arch::ArchConfig{});
  exp.set_obs(&ob);
  ndc::compiler::CompileOptions copt;
  copt.mode = ndc::compiler::Mode::kAlgorithm1;
  ndc::metrics::SchemeResult r = exp.RunCompiled(copt);
  EXPECT_EQ(ob.decisions.entries().size(), r.run.candidates);
  EXPECT_EQ(ob.decisions.unresolved(), 0u);
}

TEST_F(ObsEndToEnd, RunCellObsSummaryStagesSumToTotalEndToEnd) {
  ndc::harness::CellSpec spec;
  spec.workload = "md";
  spec.scale = ndc::workloads::Scale::kTest;
  spec.scheme = Scheme::kOracle;
  Value v = ndc::harness::RunCellObsSummary(spec);

  ASSERT_TRUE(v.Find("obs_enabled")->b);
  const Value* stages = v.Find("stages");
  ASSERT_NE(stages, nullptr);
  std::uint64_t sum = 0;
  for (const auto& [name, entry] : stages->obj) sum += entry.Find("cycles")->AsU64();
  EXPECT_EQ(sum, v.Find("total_end_to_end_cycles")->AsU64());
  EXPECT_GT(v.Find("requests_finished")->AsU64(), 0u);
  EXPECT_NE(v.Find("decisions"), nullptr);
}

}  // namespace
