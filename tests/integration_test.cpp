// End-to-end integration tests: workloads through the compiler and the full
// machine, scheme orderings the paper establishes, sensitivity configs, and
// determinism of whole experiments.

#include <gtest/gtest.h>

#include "metrics/experiment.hpp"

namespace ndc::metrics {
namespace {

using workloads::Scale;

TEST(EndToEnd, BaselineRunsToCompletionOnAllBenchmarks) {
  for (const std::string& name : workloads::BenchmarkNames()) {
    arch::ArchConfig cfg;
    Experiment exp(name, Scale::kTest, cfg);
    const runtime::RunResult& r = exp.Baseline();
    EXPECT_GT(r.makespan, 0u) << name;
    EXPECT_EQ(r.stats.Get("run.incomplete_cores"), 0u) << name;
    EXPECT_GT(r.candidates, 0u) << name;
  }
}

TEST(EndToEnd, ObserveModePreservesBaselineTiming) {
  for (const char* name : {"md", "swim", "fft"}) {
    arch::ArchConfig cfg;
    Experiment exp(name, Scale::kTest, cfg);
    EXPECT_EQ(exp.Observe().makespan, exp.Baseline().makespan) << name;
    EXPECT_GT(exp.Observe().records->TotalInstances(), 0u) << name;
  }
}

TEST(EndToEnd, SchemesRunToCompletion) {
  arch::ArchConfig cfg;
  Experiment exp("md", Scale::kTest, cfg);
  for (Scheme s : {Scheme::kDefault, Scheme::kOracle, Scheme::kWait10, Scheme::kLastWait,
                   Scheme::kMarkov, Scheme::kAlgorithm1, Scheme::kAlgorithm2}) {
    SchemeResult r = exp.Run(s);
    EXPECT_GT(r.run.makespan, 0u) << SchemeName(s);
    EXPECT_EQ(r.run.stats.Get("run.incomplete_cores"), 0u) << SchemeName(s);
  }
}

TEST(EndToEnd, CompilerSchemesOffloadOnNdcFriendlyWorkloads) {
  arch::ArchConfig cfg;
  for (const char* name : {"md", "nab", "applu"}) {
    Experiment exp(name, Scale::kTest, cfg);
    SchemeResult r = exp.Run(Scheme::kAlgorithm1);
    EXPECT_GT(r.compile_report.planned, 0u) << name;
    EXPECT_GT(r.run.offloads, 0u) << name;
    EXPECT_GT(r.run.ndc_success, 0u) << name;
  }
}

TEST(EndToEnd, Algorithm2SkipsReuseOnWater) {
  // water's xm operand is reused K times: Algorithm 2 must bypass that
  // chain (the Figure 15 mechanism).
  arch::ArchConfig cfg;
  Experiment exp("water", Scale::kTest, cfg);
  SchemeResult a2 = exp.Run(Scheme::kAlgorithm2);
  EXPECT_GT(a2.compile_report.reuse_skips, 0u);
}

TEST(EndToEnd, Algorithm2NoWorseThanAlgorithm1OnSwim) {
  // The stencil's group reuse punishes Algorithm 1's extra offloads.
  arch::ArchConfig cfg;
  Experiment exp("swim", Scale::kTest, cfg);
  SchemeResult a1 = exp.Run(Scheme::kAlgorithm1);
  SchemeResult a2 = exp.Run(Scheme::kAlgorithm2);
  EXPECT_GE(a2.improvement_pct + 1.0, a1.improvement_pct);  // 1pp tolerance
}

TEST(EndToEnd, OracleNeverCollapses) {
  // The oracle may drift slightly from its profile but must never produce
  // the pathological slowdowns of the naive waiting schemes.
  for (const char* name : {"md", "radiosity", "mgrid", "water"}) {
    arch::ArchConfig cfg;
    Experiment exp(name, Scale::kTest, cfg);
    SchemeResult r = exp.Run(Scheme::kOracle);
    EXPECT_GT(r.improvement_pct, -8.0) << name;
  }
}

TEST(EndToEnd, NdcBreakdownSumsToSuccesses) {
  arch::ArchConfig cfg;
  Experiment exp("md", Scale::kTest, cfg);
  SchemeResult r = exp.Run(Scheme::kAlgorithm1);
  std::uint64_t sum = 0;
  for (std::uint64_t v : r.run.ndc_at_loc) sum += v;
  EXPECT_EQ(sum, r.run.ndc_success);
  EXPECT_LE(r.run.ndc_success + r.run.fallbacks, r.run.offloads + r.run.fallbacks);
  EXPECT_LE(r.run.offloads, r.run.candidates);
}

TEST(EndToEnd, ExperimentsAreDeterministic) {
  arch::ArchConfig cfg;
  Experiment a("barnes", Scale::kTest, cfg);
  Experiment b("barnes", Scale::kTest, cfg);
  EXPECT_EQ(a.Baseline().makespan, b.Baseline().makespan);
  EXPECT_EQ(a.Run(Scheme::kAlgorithm2).run.makespan, b.Run(Scheme::kAlgorithm2).run.makespan);
  EXPECT_EQ(a.Run(Scheme::kDefault).run.makespan, b.Run(Scheme::kDefault).run.makespan);
}

TEST(Sensitivity, MeshSizesRunEndToEnd) {
  for (int dim : {4, 6}) {
    arch::ArchConfig cfg;
    cfg.mesh_width = dim;
    cfg.mesh_height = dim;
    Experiment exp("md", Scale::kTest, cfg);
    SchemeResult r = exp.Run(Scheme::kAlgorithm1);
    EXPECT_GT(r.run.makespan, 0u);
    EXPECT_EQ(r.run.stats.Get("run.incomplete_cores"), 0u);
  }
}

TEST(Sensitivity, L2CapacityVariantsRun) {
  for (std::uint64_t kb : {256, 1024}) {
    arch::ArchConfig cfg;
    cfg.l2.size_bytes = kb * 1024;
    Experiment exp("ocean", Scale::kTest, cfg);
    EXPECT_GT(exp.Run(Scheme::kAlgorithm1).run.makespan, 0u);
  }
}

TEST(Sensitivity, AddSubRestrictionReducesOffloads) {
  arch::ArchConfig cfg;
  Experiment full("bt", Scale::kTest, cfg);  // bt has a kMul chain
  SchemeResult rf = full.Run(Scheme::kDefault);
  arch::ArchConfig cfg2;
  cfg2.restrict_ops_to_addsub = true;
  Experiment restricted("bt", Scale::kTest, cfg2);
  SchemeResult rr = restricted.Run(Scheme::kDefault);
  EXPECT_LE(rr.run.offloads, rf.run.offloads);
}

TEST(Ablation, RerouteIncreasesRouterNdc) {
  arch::ArchConfig cfg;
  Experiment exp("nab", Scale::kTest, cfg);
  compiler::CompileOptions with;
  with.mode = compiler::Mode::kAlgorithm1;
  compiler::CompileOptions without = with;
  without.allow_reroute = false;
  std::uint64_t net_with = exp.RunCompiled(with).run.ndc_at_loc[static_cast<std::size_t>(
      arch::Loc::kLinkBuffer)];
  std::uint64_t net_without = exp.RunCompiled(without)
                                  .run.ndc_at_loc[static_cast<std::size_t>(arch::Loc::kLinkBuffer)];
  EXPECT_GE(net_with + 2, net_without);  // reroute never loses more than noise
}

TEST(Ablation, CoarseGrainUnderperformsFineGrain) {
  arch::ArchConfig cfg;
  Experiment exp("md", Scale::kTest, cfg);
  compiler::CompileOptions fine;
  fine.mode = compiler::Mode::kAlgorithm1;
  compiler::CompileOptions coarse;
  coarse.mode = compiler::Mode::kCoarseGrain;
  SchemeResult rf = exp.RunCompiled(fine);
  SchemeResult rc = exp.RunCompiled(coarse);
  EXPECT_GE(rf.improvement_pct + 3.0, rc.improvement_pct);
}

TEST(Metrics, ImprovementMathAndFormatting) {
  EXPECT_DOUBLE_EQ(ImprovementPct(200, 150), 25.0);
  EXPECT_DOUBLE_EQ(ImprovementPct(100, 120), -20.0);
  EXPECT_DOUBLE_EQ(ImprovementPct(0, 50), 0.0);
  EXPECT_NE(FormatRow({"a", "b"}).find("| "), std::string::npos);
  for (Scheme s : {Scheme::kBaseline, Scheme::kDefault, Scheme::kOracle, Scheme::kWait5,
                   Scheme::kWait10, Scheme::kWait25, Scheme::kWait50, Scheme::kLastWait,
                   Scheme::kMarkov, Scheme::kAlgorithm1, Scheme::kAlgorithm2}) {
    EXPECT_STRNE(SchemeName(s), "?");
  }
}

}  // namespace
}  // namespace ndc::metrics
