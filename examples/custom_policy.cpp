// Example: plugging a user-defined hardware waiting policy into the
// simulated machine.
//
// The Policy interface (ndc/policy.hpp) decides, per dynamic candidate,
// whether to offload, to which component, and how long the first operand's
// time-out register should run. This example implements a conservative
// "memory-side only" policy: offload only when both operands map to the
// same memory controller, with a short fixed time-out.
//
//   $ ./examples/custom_policy

#include <cstdio>

#include "metrics/experiment.hpp"
#include "ndc/machine.hpp"
#include "ndc/policy.hpp"

using namespace ndc;

namespace {

class MemorySideOnlyPolicy final : public runtime::Policy {
 public:
  explicit MemorySideOnlyPolicy(sim::Cycle timeout) : timeout_(timeout) {}

  std::string name() const override { return "memory-side-only"; }

  runtime::Decision Decide(sim::NodeId, std::uint32_t, std::uint32_t, sim::Addr, sim::Addr,
                           std::uint8_t feasible_mask) override {
    runtime::Decision d;
    if (feasible_mask & arch::LocBit(arch::Loc::kMemBank)) {
      d = {true, arch::Loc::kMemBank, timeout_};
    } else if (feasible_mask & arch::LocBit(arch::Loc::kMemCtrl)) {
      d = {true, arch::Loc::kMemCtrl, timeout_};
    }
    return d;
  }

 private:
  sim::Cycle timeout_;
};

}  // namespace

int main() {
  arch::ArchConfig cfg;
  std::printf("== custom policy: offload only when operands share a memory "
              "controller ==\n\n");
  std::printf("%-10s %12s %12s %10s %10s %10s\n", "benchmark", "baseline", "custom",
              "improve", "ndc-done", "fallbacks");
  for (const char* name : {"mgrid", "water", "md", "cholesky"}) {
    metrics::Experiment exp(name, workloads::Scale::kTest, cfg);
    const runtime::RunResult& base = exp.Baseline();

    MemorySideOnlyPolicy policy(/*timeout=*/64);
    runtime::MachineOptions opts;
    opts.policy = &policy;
    runtime::Machine m(cfg, opts);
    m.LoadProgram(exp.BaselineTraces());
    runtime::RunResult r = m.Run();

    std::printf("%-10s %12llu %12llu %+9.1f%% %10llu %10llu\n", name,
                static_cast<unsigned long long>(base.makespan),
                static_cast<unsigned long long>(r.makespan),
                metrics::ImprovementPct(base.makespan, r.makespan),
                static_cast<unsigned long long>(r.ndc_success),
                static_cast<unsigned long long>(r.fallbacks));
  }
  std::printf("\nThe same interface implements the paper's Default, Wait(x%%), Last-Wait,\n"
              "Markov, and Oracle strategies (src/ndc/policy.hpp).\n");
  return 0;
}
