// Example: NoC route-signature co-selection (Section 5.2.1, Figure 11).
//
// Two data accesses from different sources to different L2 banks may not
// share any link under default X-Y routing; choosing among minimal routes
// ("signatures") can create common links — each one an opportunity to
// perform the computation in a link router.
//
//   $ ./examples/route_planning

#include <cstdio>

#include "noc/geometry.hpp"
#include "noc/routing.hpp"
#include "noc/signature.hpp"

using namespace ndc;

namespace {

void DrawRoutes(const noc::Mesh& mesh, const noc::Route& a, const noc::Route& b) {
  // ASCII mesh: mark links used by A (a), B (b), both (*).
  noc::Signature sa = noc::Signature::FromRoute(a);
  noc::Signature sb = noc::Signature::FromRoute(b);
  for (int y = 0; y < mesh.height(); ++y) {
    // Node row with horizontal links.
    for (int x = 0; x < mesh.width(); ++x) {
      std::printf("o");
      if (x + 1 < mesh.width()) {
        sim::NodeId n = mesh.NodeAt({x, y});
        sim::NodeId e = mesh.NodeAt({x + 1, y});
        bool ua = sa.Test(mesh.LinkFrom(n, noc::Dir::East)) ||
                  sa.Test(mesh.LinkFrom(e, noc::Dir::West));
        bool ub = sb.Test(mesh.LinkFrom(n, noc::Dir::East)) ||
                  sb.Test(mesh.LinkFrom(e, noc::Dir::West));
        std::printf("%s", ua && ub ? "***" : ua ? "aaa" : ub ? "bbb" : "---");
      }
    }
    std::printf("\n");
    if (y + 1 < mesh.height()) {
      for (int x = 0; x < mesh.width(); ++x) {
        sim::NodeId n = mesh.NodeAt({x, y});
        sim::NodeId s = mesh.NodeAt({x, y + 1});
        bool ua = sa.Test(mesh.LinkFrom(n, noc::Dir::South)) ||
                  sa.Test(mesh.LinkFrom(s, noc::Dir::North));
        bool ub = sb.Test(mesh.LinkFrom(n, noc::Dir::South)) ||
                  sb.Test(mesh.LinkFrom(s, noc::Dir::North));
        std::printf("%s   ", ua && ub ? "*" : ua ? "a" : ub ? "b" : "|");
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  noc::Mesh mesh(6, 6);
  // Figure-11-style scenario: two accesses whose default routes miss each
  // other entirely.
  sim::NodeId a_src = mesh.NodeAt({0, 1}), a_dst = mesh.NodeAt({4, 4});
  sim::NodeId b_src = mesh.NodeAt({1, 0}), b_dst = mesh.NodeAt({4, 5});

  noc::Route xy_a = noc::XyRoute(mesh, a_src, a_dst);
  noc::Route xy_b = noc::XyRoute(mesh, b_src, b_dst);
  int xy_common = noc::Signature::FromRoute(xy_a)
                      .Intersect(noc::Signature::FromRoute(xy_b))
                      .Popcount();
  std::printf("== default X-Y routing: %d common links ==\n", xy_common);
  DrawRoutes(mesh, xy_a, xy_b);

  noc::RoutePair best = noc::MaxOverlapRoutes(mesh, a_src, a_dst, b_src, b_dst);
  std::printf("\n== signature co-selection: %d common links (each one an NDC "
              "opportunity) ==\n",
              best.shared_links);
  DrawRoutes(mesh, best.a, best.b);

  std::printf("\nshared signature S_a ∩ S_b = %s\n", best.shared.ToString().c_str());
  std::printf("Both routes remain minimal: |A| = %zu, |B| = %zu hops.\n", best.a.size(),
              best.b.size());
  return 0;
}
