// Example: inspect what the NDC compiler decides for every benchmark —
// chains examined, chains planned per target location, reuse skips
// (Algorithm 2), legality failures, and the annotated IR of one benchmark.
//
//   $ ./examples/inspect_compile [benchmark-to-print]

#include <cstdio>
#include <string>

#include "compiler/arch_desc.hpp"
#include "compiler/pipeline.hpp"
#include "workloads/workloads.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  std::string show = argc > 1 ? argv[1] : "swim";
  arch::ArchConfig cfg;
  compiler::ArchDescription ad(cfg);

  std::printf("%-10s | %6s %7s | %5s %5s %4s %4s | %6s %6s\n", "benchmark", "chains",
              "planned", "cache", "net", "MC", "mem", "reuse", "illegal");
  for (const workloads::WorkloadInfo& w : workloads::AllWorkloads()) {
    ir::Program p1 = workloads::BuildWorkload(w.name, workloads::Scale::kSmall);
    compiler::CompileOptions a1;
    a1.mode = compiler::Mode::kAlgorithm1;
    compiler::CompileReport r1 = compiler::Compile(p1, ad, a1);

    ir::Program p2 = workloads::BuildWorkload(w.name, workloads::Scale::kSmall);
    compiler::CompileOptions a2;
    a2.mode = compiler::Mode::kAlgorithm2;
    compiler::CompileReport r2 = compiler::Compile(p2, ad, a2);

    std::printf("%-10s | %6llu %7llu | %5llu %5llu %4llu %4llu | %6llu %6llu\n",
                w.name.c_str(), (unsigned long long)r1.chains, (unsigned long long)r1.planned,
                (unsigned long long)r1.planned_at_loc[1],
                (unsigned long long)r1.planned_at_loc[0],
                (unsigned long long)r1.planned_at_loc[2],
                (unsigned long long)r1.planned_at_loc[3],
                (unsigned long long)r2.reuse_skips,
                (unsigned long long)r1.legality_failures);
  }

  std::printf("\n== annotated IR after Algorithm 2: %s ==\n", show.c_str());
  ir::Program p = workloads::BuildWorkload(show, workloads::Scale::kSmall);
  compiler::CompileOptions opt;
  opt.mode = compiler::Mode::kAlgorithm2;
  compiler::Compile(p, ad, opt);
  std::printf("%s", p.ToString().c_str());
  return 0;
}
