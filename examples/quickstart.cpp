// Quickstart: build a small loop-nest program, compile it with the paper's
// Algorithm 1 and Algorithm 2 NDC passes, run all three versions on the
// simulated 5x5 manycore, and print what happened.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "compiler/arch_desc.hpp"
#include "compiler/codegen.hpp"
#include "compiler/pipeline.hpp"
#include "ir/program.hpp"
#include "metrics/experiment.hpp"
#include "ndc/machine.hpp"

using namespace ndc;

namespace {

// z(i,j) = x(i,j) + y(i,j) over records one cache line apart — every access
// misses the L1, so each computation is a textbook use-use chain (Figure 8's
// S1/S2/S3) worth performing near the data.
ir::Program MakeStreamAdd(ir::Int n) {
  ir::Program p;
  p.name = "stream-add";
  int x = p.AddArray("x", {n * n * 8});  // 8-element (64-byte) records
  int y = p.AddArray("y", {n * n * 8});
  int z = p.AddArray("z", {n * n});

  ir::LoopNest nest;
  nest.loops = {{0, n - 1, -1, 0, -1, 0}, {0, n - 1, -1, 0, -1, 0}};
  ir::Stmt s;
  s.id = p.NextStmtId();
  auto record = [&](int arr) {
    ir::AffineAccess a;
    a.array = arr;
    a.F = ir::IntMat(1, 2, {n * 8, 8});  // one 64-byte record per (i, j)
    a.f = {0};
    return ir::Operand::Affine(a);
  };
  ir::AffineAccess za;
  za.array = z;
  za.F = ir::IntMat(1, 2, {n, 1});
  za.f = {0};
  s.lhs = ir::Operand::Affine(za);
  s.op = arch::Op::kAdd;
  s.rhs0 = record(x);
  s.rhs1 = record(y);
  nest.body.push_back(s);
  p.nests.push_back(std::move(nest));
  return p;
}

runtime::RunResult RunProgram(const ir::Program& prog, const arch::ArchConfig& cfg) {
  runtime::Machine machine(cfg, {});
  machine.LoadProgram(compiler::Lower(prog, cfg.num_nodes()).traces);
  return machine.Run();
}

}  // namespace

int main() {
  arch::ArchConfig cfg;  // Table 1 defaults: 5x5 mesh, 4 MCs, NDC everywhere
  const ir::Int n = 64;

  std::printf("== near-data-computing quickstart ==\n");
  std::printf("machine: %dx%d mesh, %d MCs, L1 %lluKB, L2 %lluKB/bank\n\n", cfg.mesh_width,
              cfg.mesh_height, cfg.num_mcs,
              static_cast<unsigned long long>(cfg.l1.size_bytes / 1024),
              static_cast<unsigned long long>(cfg.l2.size_bytes / 1024));

  // 1. Baseline: conventional execution.
  ir::Program base = MakeStreamAdd(n);
  runtime::RunResult base_run = RunProgram(base, cfg);
  std::printf("baseline        : %10llu cycles  (L1 miss %.1f%%, L2 miss %.1f%%)\n",
              static_cast<unsigned long long>(base_run.makespan),
              base_run.L1MissRate() * 100.0, base_run.L2MissRate() * 100.0);

  // 2. Algorithm 1: restructure for NDC and insert pre-compute instructions.
  for (compiler::Mode mode : {compiler::Mode::kAlgorithm1, compiler::Mode::kAlgorithm2}) {
    ir::Program prog = MakeStreamAdd(n);
    compiler::ArchDescription ad(cfg);
    compiler::CompileOptions opt;
    opt.mode = mode;
    compiler::CompileReport rep = compiler::Compile(prog, ad, opt);
    runtime::RunResult run = RunProgram(prog, cfg);
    std::printf("%-16s: %10llu cycles  (%+.1f%%)  chains=%llu planned=%llu "
                "ndc-done=%llu fallbacks=%llu\n",
                compiler::ModeName(mode), static_cast<unsigned long long>(run.makespan),
                metrics::ImprovementPct(base_run.makespan, run.makespan),
                static_cast<unsigned long long>(rep.chains),
                static_cast<unsigned long long>(rep.planned),
                static_cast<unsigned long long>(run.ndc_success),
                static_cast<unsigned long long>(run.fallbacks));
    std::printf("                  NDC breakdown: cache=%llu network=%llu MC=%llu memory=%llu\n",
                static_cast<unsigned long long>(run.ndc_at_loc[1]),
                static_cast<unsigned long long>(run.ndc_at_loc[0]),
                static_cast<unsigned long long>(run.ndc_at_loc[2]),
                static_cast<unsigned long long>(run.ndc_at_loc[3]));
  }

  // 3. The oracle upper bound from the quantification framework (Section 4).
  metrics::Experiment exp("swim", workloads::Scale::kTest, cfg);
  metrics::SchemeResult oracle = exp.Run(metrics::Scheme::kOracle);
  std::printf("\nswim (stand-in) oracle improvement: %+.1f%% (NDC at cache=%llu "
              "network=%llu MC=%llu memory=%llu)\n",
              oracle.improvement_pct,
              static_cast<unsigned long long>(oracle.run.ndc_at_loc[1]),
              static_cast<unsigned long long>(oracle.run.ndc_at_loc[0]),
              static_cast<unsigned long long>(oracle.run.ndc_at_loc[2]),
              static_cast<unsigned long long>(oracle.run.ndc_at_loc[3]));
  return 0;
}
