// Example: the NDC-vs-locality tradeoff on a stencil workload (swim).
//
// Algorithm 1 offloads every use-use chain it can restructure; Algorithm 2
// skips chains whose operands are reused later (Section 5.3). On stencil
// code with group reuse, Algorithm 2 preserves cache locality and wins.
//
//   $ ./examples/stencil_offload [test|small]   (default: small)

#include <cstdio>
#include <cstring>

#include "metrics/experiment.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  workloads::Scale scale = workloads::Scale::kSmall;
  if (argc > 1 && std::strcmp(argv[1], "test") == 0) scale = workloads::Scale::kTest;

  arch::ArchConfig cfg;
  metrics::Experiment exp("swim", scale, cfg);

  std::printf("== swim stand-in: shallow-water stencils with p-group reuse ==\n\n");
  const runtime::RunResult& base = exp.Baseline();
  std::printf("%-14s %10s %8s %8s %9s %9s %9s\n", "scheme", "cycles", "L1miss", "L2miss",
              "offloads", "ndc-done", "improve");
  std::printf("%-14s %10llu %7.1f%% %7.1f%% %9s %9s %9s\n", "baseline",
              static_cast<unsigned long long>(base.makespan), base.L1MissRate() * 100,
              base.L2MissRate() * 100, "-", "-", "-");

  for (metrics::Scheme s : {metrics::Scheme::kAlgorithm1, metrics::Scheme::kAlgorithm2}) {
    metrics::SchemeResult r = exp.Run(s);
    std::printf("%-14s %10llu %7.1f%% %7.1f%% %9llu %9llu %+8.1f%%\n", metrics::SchemeName(s),
                static_cast<unsigned long long>(r.run.makespan), r.run.L1MissRate() * 100,
                r.run.L2MissRate() * 100, static_cast<unsigned long long>(r.run.offloads),
                static_cast<unsigned long long>(r.run.ndc_success), r.improvement_pct);
    if (s == metrics::Scheme::kAlgorithm2) {
      std::printf("\nAlgorithm 2 skipped %llu of %llu chains for data-locality reasons\n",
                  static_cast<unsigned long long>(r.compile_report.reuse_skips),
                  static_cast<unsigned long long>(r.compile_report.chains));
    }
  }
  std::printf("\nExpected: Algorithm 2 >= Algorithm 1 here — the stencil's reused\n"
              "operand (p) must stay in the cache, so the reuse-aware pass leaves its\n"
              "chain alone and offloads only the streaming pair.\n");
  return 0;
}
