#!/usr/bin/env python3
"""Doc-lint: keep the top-level docs anchored to the code they describe.

Three checks, all fatal:
  - coverage: every subsystem directory under src/ is mentioned in
    DESIGN.md (as `src/<dir>`), so a new subsystem cannot land without
    design documentation;
  - existence: every `scripts/...` path and every `build/tools/...` /
    `build/bench/...` binary referenced from a tracked markdown file maps
    to a real file in the repo (scripts/<name>, tools/<stem>.cpp with
    `-` spelled `_`, bench/<stem>.cpp);
  - links: every relative markdown link target in a tracked *.md file
    resolves to an existing file or directory (http(s), mailto and
    pure-#anchor links are skipped).

Usage: check_docs.py [REPO_ROOT]
Exit: 0 clean, 1 findings, 2 usage errors.
"""

import os
import re
import subprocess
import sys

# Directories under src/ that are organizational only and need no
# DESIGN.md section of their own. Keep this list empty unless a dir
# truly has no design surface.
COVERAGE_EXEMPT = set()

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SCRIPT_RE = re.compile(r"\bscripts/([A-Za-z0-9_.-]+)")
BINARY_RE = re.compile(r"\bbuild[-a-z]*/(tools|bench)/([A-Za-z0-9_-]+)")


def tracked_markdown(root):
    out = subprocess.run(
        ["git", "-C", root, "ls-files", "*.md"],
        check=True, capture_output=True, text=True,
    ).stdout
    return [line for line in out.splitlines() if line]


def check_coverage(root, findings):
    design = open(os.path.join(root, "DESIGN.md"), encoding="utf-8").read()
    src = os.path.join(root, "src")
    for entry in sorted(os.listdir(src)):
        if not os.path.isdir(os.path.join(src, entry)):
            continue
        if entry in COVERAGE_EXEMPT:
            continue
        if "src/" + entry not in design:
            findings.append(
                f"DESIGN.md: no mention of src/{entry} — document the "
                f"subsystem (inventory row + section) or exempt it in "
                f"scripts/check_docs.py"
            )


def check_file(root, md, findings):
    text = open(os.path.join(root, md), encoding="utf-8").read()
    md_dir = os.path.dirname(os.path.join(root, md))

    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(os.path.join(md_dir, path))
        if not os.path.exists(resolved):
            findings.append(f"{md}: dead relative link -> {target}")

    for name in SCRIPT_RE.findall(text):
        if not os.path.exists(os.path.join(root, "scripts", name)):
            findings.append(f"{md}: references missing scripts/{name}")

    for kind, stem in BINARY_RE.findall(text):
        srcdir = "tools" if kind == "tools" else "bench"
        candidates = [stem + ".cpp", stem.replace("-", "_") + ".cpp"]
        if not any(
            os.path.exists(os.path.join(root, srcdir, c)) for c in candidates
        ):
            findings.append(
                f"{md}: references build/{kind}/{stem} but no "
                f"{srcdir}/{candidates[-1]} exists"
            )


def main(argv):
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = os.path.abspath(argv[1] if len(argv) == 2 else ".")
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"check_docs: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    findings = []
    check_coverage(root, findings)
    docs = tracked_markdown(root)
    for md in docs:
        check_file(root, md, findings)

    if findings:
        for f in findings:
            print(f"check_docs: {f}", file=sys.stderr)
        print(f"check_docs: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"check_docs: ok ({len(docs)} markdown files, "
          f"docs anchored to src/)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
