#!/usr/bin/env python3
"""Enforce the substrate performance floors from a BENCH_substrate.json.

Two gates, both measured on the same machine in the same process so they are
robust to runner speed:
  - the calendar queue must beat the seed binary-heap queue by at least
    --min-speedup on the hot small-delay scheduling path;
  - the hot path must be allocation-free in steady state: the calendar_chain
    bench may average at most --max-allocs-per-event heap allocations.

With --min-pdes-speedup > 0 a third gate applies: the conservative-window
sharded engine must reach that events/sec multiple over the sequential
engine at 4 sim threads on the fig04 workload run ("pdes_speedup_4t",
emitted unless bench_substrate ran with --pdes-scale=off).

Usage: check_substrate_perf.py BENCH_substrate.json
           [--min-speedup=2.0] [--max-allocs-per-event=0.01]
           [--min-pdes-speedup=0]
Exit: 0 within floors, 1 floor violated, 2 usage/parse errors.
"""

import json
import sys


def main(argv):
    path = None
    min_speedup = 2.0
    max_allocs = 0.01
    min_pdes = 0.0
    for arg in argv[1:]:
        if arg.startswith("--min-speedup="):
            min_speedup = float(arg.split("=", 1)[1])
        elif arg.startswith("--max-allocs-per-event="):
            max_allocs = float(arg.split("=", 1)[1])
        elif arg.startswith("--min-pdes-speedup="):
            min_pdes = float(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            path = arg
    if path is None:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_substrate_perf: cannot read {path}: {e}", file=sys.stderr)
        return 2

    benches = {b["name"]: b for b in report.get("benches", [])}
    if "calendar_chain" not in benches or "legacy_chain" not in benches:
        print("check_substrate_perf: report lacks calendar_chain/legacy_chain",
              file=sys.stderr)
        return 2

    speedup = report.get("speedup_vs_legacy", 0.0)
    allocs = benches["calendar_chain"]["allocs_per_event"]

    ok = True
    if speedup < min_speedup:
        print(f"FAIL speedup_vs_legacy = {speedup:.2f}x < floor {min_speedup:.2f}x",
              file=sys.stderr)
        ok = False
    else:
        print(f"ok   speedup_vs_legacy = {speedup:.2f}x (floor {min_speedup:.2f}x)")
    hw = report.get("hw_threads", 0)
    if min_pdes > 0 and hw and hw < 4:
        # A 4-shard-worker speedup floor is meaningless without 4 hardware
        # threads — skip loudly rather than fail on starved runners.
        print(f"skip pdes_speedup_4t floor: only {hw} hardware threads")
    elif min_pdes > 0:
        pdes = report.get("pdes_speedup_4t")
        if pdes is None:
            print("check_substrate_perf: --min-pdes-speedup set but the report "
                  "has no pdes_speedup_4t (bench_substrate --pdes-scale=off?)",
                  file=sys.stderr)
            return 2
        if pdes < min_pdes:
            print(f"FAIL pdes_speedup_4t = {pdes:.2f}x < floor {min_pdes:.2f}x",
                  file=sys.stderr)
            ok = False
        else:
            print(f"ok   pdes_speedup_4t = {pdes:.2f}x (floor {min_pdes:.2f}x)")
    if allocs > max_allocs:
        print(f"FAIL calendar_chain allocs/event = {allocs:.6f} > "
              f"ceiling {max_allocs}", file=sys.stderr)
        ok = False
    else:
        print(f"ok   calendar_chain allocs/event = {allocs:.6f} "
              f"(ceiling {max_allocs})")

    for row in report.get("benches", []):
        print(f"     {row['name']:<24} {row['events_per_sec'] / 1e6:8.2f} Mev/s "
              f"{row['ns_per_event']:8.2f} ns/event "
              f"{row['allocs_per_event']:10.6f} allocs/event")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
