#!/usr/bin/env bash
# Bit-identity gate for the simulation substrate: every figure/table binary
# must print byte-for-byte the stdout recorded in tests/goldens/ (captured
# from the pre-calendar-queue seed tree at --scale=test). Any diff means a
# substrate change altered simulated behaviour, not just its speed.
#
# Usage: check_figure_goldens.sh NDC_SWEEP [GOLDEN_DIR] [JOBS]
# Env:   NDC_SWEEP_EXTRA_ARGS — extra flags appended to every ndc-sweep
#        invocation (e.g. "--classify"); the goldens must still match, which
#        is exactly how CI proves classification never touches stdout.
# Exit:  0 all identical, 1 at least one diff, 2 usage errors.
set -u

NDC_SWEEP="${1:?usage: check_figure_goldens.sh NDC_SWEEP [GOLDEN_DIR] [JOBS]}"
GOLDEN_DIR="${2:-$(dirname "$0")/../tests/goldens}"
JOBS="${3:-$(nproc)}"
EXTRA_ARGS="${NDC_SWEEP_EXTRA_ARGS:-}"

[ -x "$NDC_SWEEP" ] || { echo "check_figure_goldens: $NDC_SWEEP not executable" >&2; exit 2; }
[ -d "$GOLDEN_DIR" ] || { echo "check_figure_goldens: $GOLDEN_DIR not a directory" >&2; exit 2; }

FIGURES="fig02 fig03 fig04 fig05 fig06 fig13 fig14 fig15 fig16 fig17 tab02 abl diag_congestion"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail=0
for f in $FIGURES; do
  golden="$GOLDEN_DIR/$f.scale-test.stdout"
  if [ ! -f "$golden" ]; then
    echo "check_figure_goldens: missing golden $golden" >&2
    fail=1
    continue
  fi
  # --jobs only parallelizes within a figure; cell order (and thus stdout)
  # is spec-order regardless of worker count. $EXTRA_ARGS is word-split on
  # purpose (it carries whole flags).
  # shellcheck disable=SC2086
  if ! "$NDC_SWEEP" --figure="$f" --scale=test --jobs="$JOBS" --no-cache $EXTRA_ARGS \
      > "$tmp/$f.stdout" 2>/dev/null; then
    echo "FAIL  $f: ndc-sweep exited non-zero" >&2
    fail=1
    continue
  fi
  if diff -u "$golden" "$tmp/$f.stdout" > "$tmp/$f.diff"; then
    echo "ok    $f"
  else
    echo "FAIL  $f: stdout differs from golden" >&2
    sed -n '1,20p' "$tmp/$f.diff" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_figure_goldens: FAILED (substrate output is not bit-identical)" >&2
  exit 1
fi
echo "check_figure_goldens: all figures bit-identical"
