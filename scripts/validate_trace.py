#!/usr/bin/env python3
"""Validate an ndc-trace JSON file against the Chrome trace-event schema.

Checks the subset of the spec that chrome://tracing and Perfetto actually
require to load a file: a top-level "traceEvents" array (non-empty), and on
every event the keys ph/ts/pid/tid/name with sane types; 'X' events must
also carry a numeric "dur". On top of the generic schema it validates the
simulator's own instant-event vocabulary: every 'i' event named "ndc.*"
must be one of the names the runtime actually emits, carrying its required
numeric args ("ndc.sync" needs "op", "ndc.meet"/"ndc.offload" need "loc") —
a renamed event or a dropped arg fails instead of passing silently. Exits 0
when valid, 1 otherwise, 2 on usage errors. Stdlib only — runs anywhere CI
has a python3.

Usage: validate_trace.py TRACE.json
"""

import json
import sys

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")

# The complete instant vocabulary of ndc::runtime::Machine (grep
# 'sink.Instant' under src/), mapped to the numeric args each emission
# site always supplies. An 'i' event with an "ndc." name outside this dict
# is a vocabulary drift — the tooling reading these traces keys on exact
# names, so drift must fail loudly here rather than downstream.
NDC_INSTANTS = {
    "ndc.sync": ("op",),        # sync request issued (op = sync::Op)
    "ndc.sync.grant": (),       # grant response reached the core
    "ndc.meet": ("loc",),       # operands met; computed near data
    "ndc.offload": ("loc",),    # offload decision (loc = planned arch::Loc)
    "ndc.retry": (),            # wait window widened and re-armed
    "ndc.abort": (),            # wait aborted (timeout / partner done)
    "ndc.fallback": (),         # offloaded pair completed conventionally
}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: {e}")

    if not isinstance(doc, dict):
        return fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('missing "traceEvents" array')
    if not events:
        return fail('"traceEvents" is empty')

    phases = {}
    ndc_instants = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            return fail(f"event {i} is not an object")
        for key in REQUIRED_KEYS:
            if key not in e:
                return fail(f"event {i} missing required key '{key}'")
        if not isinstance(e["ph"], str) or len(e["ph"]) != 1:
            return fail(f"event {i}: 'ph' must be a single-character string")
        for key in ("ts", "pid", "tid"):
            if not isinstance(e[key], (int, float)):
                return fail(f"event {i}: '{key}' must be numeric")
        if not isinstance(e["name"], str) or not e["name"]:
            return fail(f"event {i}: 'name' must be a non-empty string")
        if e["ph"] == "X" and not isinstance(e.get("dur"), (int, float)):
            return fail(f"event {i}: 'X' event missing numeric 'dur'")
        args = e.get("args")
        if args is not None and not isinstance(args, dict):
            return fail(f"event {i}: 'args' must be an object")
        if e["ph"] == "i" and e["name"].startswith("ndc."):
            name = e["name"]
            if name not in NDC_INSTANTS:
                return fail(
                    f"event {i}: unknown ndc instant '{name}' "
                    f"(known: {' '.join(sorted(NDC_INSTANTS))})"
                )
            for req in NDC_INSTANTS[name]:
                val = (args or {}).get(req)
                if not isinstance(val, int) or isinstance(val, bool) or val < 0:
                    return fail(
                        f"event {i}: '{name}' requires non-negative integer "
                        f"arg '{req}', got {val!r}"
                    )
            ndc_instants[name] = ndc_instants.get(name, 0) + 1
        phases[e["ph"]] = phases.get(e["ph"], 0) + 1

    counts = " ".join(f"{ph}={n}" for ph, n in sorted(phases.items()))
    ndc = " ".join(f"{n}={c}" for n, c in sorted(ndc_instants.items()))
    suffix = f"; ndc instants: {ndc}" if ndc else ""
    print(f"validate_trace: OK: {len(events)} events ({counts}){suffix}")
    return 0


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return validate(argv[1])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
