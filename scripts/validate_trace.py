#!/usr/bin/env python3
"""Validate an ndc-trace JSON file against the Chrome trace-event schema.

Checks the subset of the spec that chrome://tracing and Perfetto actually
require to load a file: a top-level "traceEvents" array (non-empty), and on
every event the keys ph/ts/pid/tid/name with sane types; 'X' events must
also carry a numeric "dur". Exits 0 when valid, 1 otherwise, 2 on usage
errors. Stdlib only — runs anywhere CI has a python3.

Usage: validate_trace.py TRACE.json
"""

import json
import sys

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: {e}")

    if not isinstance(doc, dict):
        return fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('missing "traceEvents" array')
    if not events:
        return fail('"traceEvents" is empty')

    phases = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            return fail(f"event {i} is not an object")
        for key in REQUIRED_KEYS:
            if key not in e:
                return fail(f"event {i} missing required key '{key}'")
        if not isinstance(e["ph"], str) or len(e["ph"]) != 1:
            return fail(f"event {i}: 'ph' must be a single-character string")
        for key in ("ts", "pid", "tid"):
            if not isinstance(e[key], (int, float)):
                return fail(f"event {i}: '{key}' must be numeric")
        if not isinstance(e["name"], str) or not e["name"]:
            return fail(f"event {i}: 'name' must be a non-empty string")
        if e["ph"] == "X" and not isinstance(e.get("dur"), (int, float)):
            return fail(f"event {i}: 'X' event missing numeric 'dur'")
        phases[e["ph"]] = phases.get(e["ph"], 0) + 1

    counts = " ".join(f"{ph}={n}" for ph, n in sorted(phases.items()))
    print(f"validate_trace: OK: {len(events)} events ({counts})")
    return 0


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return validate(argv[1])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
