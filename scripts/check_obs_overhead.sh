#!/usr/bin/env bash
# Enforce the observability overhead-when-off budget: an NDC_OBS=ON binary
# with no Observability attached (the runtime-off default) must run the
# smoke sweep within THRESHOLD_PCT of an NDC_OBS=OFF binary. Takes the
# minimum of N timed runs per binary to suppress scheduler noise.
#
# The runtime-off path includes every hot-path branch observability has
# grown — request tracing, sync grant/stall stats, the phase-window
# sampler's disabled check, and the gated core stall breakdown — so the
# budget re-proves itself as instrumentation accrues. A second, purely
# informational measurement times the same sweep with --classify (sampler
# enabled at the default window) so CI logs always show what turning the
# taxonomy on actually costs; that number is reported, not gated. Expect
# roughly 2x there: --classify re-simulates every cell with the bundle
# attached, exactly like --export-obs, to keep stdout golden-identical.
#
# Usage: check_obs_overhead.sh SWEEP_ON SWEEP_OFF [RUNS] [THRESHOLD_PCT]
# Exit:  0 within budget, 1 over budget, 2 usage/build errors.
set -u

SWEEP_ON="${1:?usage: check_obs_overhead.sh SWEEP_ON SWEEP_OFF [RUNS] [THRESHOLD_PCT]}"
SWEEP_OFF="${2:?usage: check_obs_overhead.sh SWEEP_ON SWEEP_OFF [RUNS] [THRESHOLD_PCT]}"
RUNS="${3:-5}"
THRESHOLD_PCT="${4:-2}"

[ -x "$SWEEP_ON" ] || { echo "check_obs_overhead: $SWEEP_ON not executable" >&2; exit 2; }
[ -x "$SWEEP_OFF" ] || { echo "check_obs_overhead: $SWEEP_OFF not executable" >&2; exit 2; }

# Min-of-N wall-clock (ms) for one binary, cache disabled so every run
# simulates the full grid. Extra flags (e.g. --classify) ride in "$2...".
min_ms() {
  local bin="$1" best= i t0 t1 ms
  shift
  for i in $(seq 1 "$RUNS"); do
    t0=$(date +%s%N)
    "$bin" --figure=smoke --scale=test --jobs=1 --no-cache "$@" >/dev/null 2>&1 || {
      echo "check_obs_overhead: $bin failed" >&2; exit 2; }
    t1=$(date +%s%N)
    ms=$(( (t1 - t0) / 1000000 ))
    if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
  done
  echo "$best"
}

on_ms=$(min_ms "$SWEEP_ON") || exit 2
off_ms=$(min_ms "$SWEEP_OFF") || exit 2
classify_ms=$(min_ms "$SWEEP_ON" --classify) || exit 2

if [ "$off_ms" -eq 0 ]; then
  echo "check_obs_overhead: off-build run too fast to measure; passing" >&2
  exit 0
fi

# Integer percent overhead, rounded up so a borderline regression fails.
overhead_pct=$(( (on_ms - off_ms) * 100 / off_ms ))
classify_pct=$(( (classify_ms - off_ms) * 100 / off_ms ))
echo "check_obs_overhead: obs-on(runtime-off)=${on_ms}ms obs-off-build=${off_ms}ms" \
     "overhead=${overhead_pct}% (budget ${THRESHOLD_PCT}%, min of ${RUNS} runs)"
echo "check_obs_overhead: info: obs-on(--classify)=${classify_ms}ms" \
     "(${classify_pct}% vs obs-off; sampler + classification enabled, not gated)"

if [ "$overhead_pct" -gt "$THRESHOLD_PCT" ]; then
  echo "check_obs_overhead: FAIL: overhead exceeds ${THRESHOLD_PCT}% budget" >&2
  exit 1
fi
echo "check_obs_overhead: OK"
