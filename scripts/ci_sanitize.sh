#!/usr/bin/env bash
# Builds and runs the full test suite (plus ndc-lint, which is registered
# with ctest) under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Usage: scripts/ci_sanitize.sh [build-dir]   (default: build-sanitize)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNDC_SANITIZE=ON \
  -DNDC_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes ASan/UBSan findings fail the ctest run instead of
# printing and continuing.
export ASAN_OPTIONS="detect_leaks=1:halt_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
