#!/usr/bin/env bash
# Builds and runs tests under a sanitizer.
#
#   address (default): ASan + UBSan over the full ctest suite (plus
#     ndc-lint, which is registered with ctest).
#   thread: TSan over the parallel-simulation surfaces — the sharded
#     event-queue tests, the machine-level PDES tests, the harness pool
#     tests, and one multi-threaded figure regeneration (ndc-sweep fig04 at
#     --sim-threads=8 on top of a parallel sweep pool).
#
# Usage: scripts/ci_sanitize.sh [address|thread] [build-dir]
#        (default build-dir: build-sanitize for address, build-tsan for thread)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-address}"
case "$MODE" in
  address) BUILD_DIR="${2:-build-sanitize}" ;;
  thread)  BUILD_DIR="${2:-build-tsan}" ;;
  *)
    # Back-compat: a lone non-mode argument is an address-mode build dir.
    BUILD_DIR="$MODE"
    MODE="address"
    ;;
esac

SANITIZE_VALUE="ON"
if [ "$MODE" = "thread" ]; then SANITIZE_VALUE="thread"; fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNDC_SANITIZE="$SANITIZE_VALUE" \
  -DNDC_WERROR=ON
if [ "$MODE" = "thread" ]; then
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target pdes_test pdes_machine_test harness_test ndc-sweep
else
  cmake --build "$BUILD_DIR" -j "$(nproc)"
fi

# halt_on_error makes sanitizer findings fail the run instead of printing
# and continuing.
export ASAN_OPTIONS="detect_leaks=1:halt_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1"

if [ "$MODE" = "thread" ]; then
  "$BUILD_DIR"/tests/pdes_test
  "$BUILD_DIR"/tests/pdes_machine_test
  "$BUILD_DIR"/tests/harness_test
  # One multi-threaded figure end-to-end: shard workers and sweep workers
  # composed. stdout must be byte-identical across parallel thread counts.
  "$BUILD_DIR"/tools/ndc-sweep --figure=fig04 --scale=test --no-cache \
    --jobs=2 --sim-threads=2 > "$BUILD_DIR/fig04-t2.txt" 2>/dev/null
  "$BUILD_DIR"/tools/ndc-sweep --figure=fig04 --scale=test --no-cache \
    --jobs=2 --sim-threads=8 > "$BUILD_DIR/fig04-t8.txt" 2>/dev/null
  diff -u "$BUILD_DIR/fig04-t2.txt" "$BUILD_DIR/fig04-t8.txt"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
