// Figure 3: comparison of breakeven points versus arrival windows, averaged
// over all 20 benchmarks, for each of the four NDC locations.
//
// The paper's conclusion: breakeven points are in general much lower than
// arrival windows — waiting for the late operand usually means waiting past
// the point where NDC still pays off.

#include <array>
#include <cstdio>

#include "bench_common.hpp"
#include "ndc/record.hpp"
#include "sim/stats.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall);
  benchutil::PrintHeader("Figure 3: breakeven points vs arrival windows", args);

  const std::array<arch::Loc, 4> locs = {arch::Loc::kLinkBuffer, arch::Loc::kCacheCtrl,
                                         arch::Loc::kMemCtrl, arch::Loc::kMemBank};
  std::array<sim::BucketHistogram, 4> window_h;
  std::array<sim::BucketHistogram, 4> breakeven_h;

  arch::ArchConfig cfg;
  noc::Mesh mesh(cfg.mesh_width, cfg.mesh_height);
  benchutil::ForEachBenchmark(args, [&](const std::string& name) {
    metrics::Experiment exp(name, args.scale, cfg);
    const auto& obs = exp.Observe();
    obs.records->ForEach([&](const runtime::InstanceRecord& rec) {
      if (rec.local_l1) return;
      for (std::size_t l = 0; l < locs.size(); ++l) {
        const runtime::LocObs& o = rec.at(locs[l]);
        if (!o.feasible) continue;
        window_h[l].Add(o.Window());
        sim::Cycle ret = runtime::ResultReturnLatency(mesh, cfg.noc, o.node, rec.core);
        breakeven_h[l].Add(runtime::BreakevenPoint(rec, locs[l], 1, ret));
      }
    });
  });

  const char* loc_names[4] = {"link buffer", "cache controller", "memory controller",
                              "main memory"};
  std::printf("\n%% of samples per bucket (paper Figure 3 shape: breakevens skew low)\n");
  std::printf("%-18s %-10s %6s %6s %6s %6s %6s %6s %6s\n", "location", "metric", "<=1",
              "<=10", "<=20", "<=50", "<=100", "<=500", "500+");
  for (std::size_t l = 0; l < locs.size(); ++l) {
    for (int which = 0; which < 2; ++which) {
      const sim::BucketHistogram& h = which == 0 ? window_h[l] : breakeven_h[l];
      std::printf("%-18s %-10s", which == 0 ? loc_names[l] : "",
                  which == 0 ? "window" : "breakeven");
      for (std::size_t e = 0; e < 7; ++e) std::printf(" %5.1f%%", h.Fraction(e) * 100.0);
      std::printf("\n");
    }
  }

  // Headline check: mean breakeven below mean window per location.
  std::printf("\nconclusion check: in every location, the fraction of breakevens <= 20cy "
              "should exceed the fraction of windows <= 20cy\n");
  for (std::size_t l = 0; l < locs.size(); ++l) {
    std::printf("  %-18s windows<=20: %5.1f%%   breakevens<=20: %5.1f%%\n", loc_names[l],
                window_h[l].CumulativeFraction(2) * 100.0,
                breakeven_h[l].CumulativeFraction(2) * 100.0);
  }
  return 0;
}
