// Figure 3: comparison of breakeven points versus arrival windows, averaged
// over all 20 benchmarks, for each of the four NDC locations.
//
// Thin wrapper: the grid/render logic lives in src/harness (RunFig03).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("fig03", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
