// bench_classify — bottleneck labels flipping under scaled pressure.
//
// Sweeps the active shard (core) count k over a small set of sharded
// workloads at the Table-1 machine, classifying every run through the
// utilization-attribution layer: as k grows the label migrates to whichever
// resource saturates first — the streaming kernel drives the MC queues ever
// deeper (dram-latency, queue occupancy climbing toward the full MLP
// window), while the atomic reduction and the wavefront stencil flip from
// dram-latency to sync once grant stalls dominate core time. Each row
// prints the label next to the full derived signal vector, so a flip is
// always accompanied by the fractions that caused it; --json writes the
// curve with the complete classification objects (raw counters, thresholds,
// per-window series).
//
// Runs are deterministic: the same (workload, scale, k, window) reproduces
// the same counters, signals, and label bit-for-bit.
//
// With NDC_OBS=OFF there is nothing to sample; the binary prints a note
// and exits 0 so generic bench invocations stay harmless.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "compiler/codegen.hpp"
#include "harness/cell.hpp"
#include "workloads/sharded.hpp"

namespace {

namespace json = ndc::harness::json;

const char* const kClassifyWorkloads[] = {"shard.stream", "shard.reduce.atomic",
                                          "shard.stencil.wave"};

struct ClassifyBenchArgs {
  ndc::workloads::Scale scale = ndc::workloads::Scale::kSmall;
  std::string only;
  std::vector<int> cores = {1, 2, 4, 8, 16, 25};
  std::uint64_t window = ndc::harness::kDefaultClassifyWindow;
  std::string json_path;
};

[[noreturn]] void UsageAndExit(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--scale=test|small|full] [--bench=NAME]\n"
               "         [--cores=K1,K2,...] [--window=CYCLES] [--json=FILE|--out=FILE]\n",
               prog);
  std::exit(2);
}

ClassifyBenchArgs Parse(int argc, char** argv) {
  ClassifyBenchArgs a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--scale=test") == 0) {
      a.scale = ndc::workloads::Scale::kTest;
    } else if (std::strcmp(arg, "--scale=small") == 0) {
      a.scale = ndc::workloads::Scale::kSmall;
    } else if (std::strcmp(arg, "--scale=full") == 0) {
      a.scale = ndc::workloads::Scale::kFull;
    } else if (std::strncmp(arg, "--bench=", 8) == 0) {
      a.only = arg + 8;
    } else if (std::strncmp(arg, "--cores=", 8) == 0) {
      a.cores.clear();
      const char* p = arg + 8;
      while (*p != '\0') {
        char* end = nullptr;
        long v = std::strtol(p, &end, 10);
        if (end == p || v < 1) UsageAndExit(argv[0]);
        a.cores.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
      }
      if (a.cores.empty()) UsageAndExit(argv[0]);
    } else if (std::strncmp(arg, "--window=", 9) == 0) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(arg + 9, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) UsageAndExit(argv[0]);
      a.window = n;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      a.json_path = arg + 7;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      // Alias of --json: the BENCH_*.json contract (EXPERIMENTS.md) spells
      // the report path --out=FILE across every bench binary.
      a.json_path = arg + 6;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg);
      UsageAndExit(argv[0]);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  ClassifyBenchArgs args = Parse(argc, argv);
  if constexpr (!ndc::obs::kObsEnabled) {
    std::printf("bench_classify: observability compiled out (NDC_OBS=OFF); "
                "nothing to classify\n");
    return 0;
  }
  ndc::arch::ArchConfig cfg;

  std::printf("# Bottleneck label vs active shard count  (scale=%s, window=%llu, "
              "%d-node machine)\n",
              ndc::benchutil::ScaleName(args.scale),
              static_cast<unsigned long long>(args.window), cfg.num_nodes());
  std::printf("%-20s %6s %10s %-12s  %s\n", "workload", "cores", "makespan", "label",
              "signals");

  json::Value rows = json::Value::Array();
  for (const char* w : kClassifyWorkloads) {
    if (!args.only.empty() && w != args.only) continue;
    for (int k : args.cores) {
      if (k > cfg.num_nodes()) {
        std::fprintf(stderr, "bench_classify: skipping cores=%d (> %d machine nodes)\n",
                     k, cfg.num_nodes());
        continue;
      }
      ndc::obs::ObsOptions oo;
      oo.sample_period = 1;
      oo.emit_stage_events = false;
      oo.window_cycles = args.window;
      ndc::obs::Observability ob(oo);

      ndc::ir::Program prog = ndc::workloads::BuildShardedWorkload(w, args.scale, k);
      std::vector<ndc::arch::Trace> traces =
          ndc::compiler::Lower(prog, cfg.num_nodes(), &cfg).traces;
      ndc::runtime::MachineOptions mo;
      mo.obs = &ob;
      ndc::runtime::Machine m(cfg, mo);
      m.LoadProgram(std::move(traces));
      ndc::runtime::RunResult r = m.Run();

      ndc::obs::UtilizationSignals sig =
          ndc::harness::ComputeRunSignals(r.stats, r.makespan, cfg, &ob.registry);
      ndc::obs::Label label = ndc::obs::Classify(sig);
      std::printf("%-20s %6d %10llu %-12s  %s\n", w, k,
                  static_cast<unsigned long long>(r.makespan),
                  ndc::obs::LabelName(label), ndc::obs::SignalsToText(sig).c_str());

      json::Value row = json::Value::Object();
      row.obj["workload"] = json::Value::Str(w);
      row.obj["cores"] = json::Value::Int(static_cast<std::uint64_t>(k));
      row.obj["makespan"] = json::Value::Int(r.makespan);
      row.obj["classification"] = ndc::harness::ClassificationJson(sig, ob.sampler);
      rows.arr.push_back(std::move(row));
    }
  }

  if (!args.json_path.empty()) {
    json::Value report = json::Value::Object();
    report.obj["bench"] = json::Value::Str("classify");
    report.obj["scale"] = json::Value::Str(ndc::benchutil::ScaleName(args.scale));
    report.obj["window"] = json::Value::Int(args.window);
    report.obj["machine_nodes"] =
        json::Value::Int(static_cast<std::uint64_t>(cfg.num_nodes()));
    report.obj["rows"] = rows;
    std::ofstream f(args.json_path);
    if (!f) {
      std::fprintf(stderr, "bench_classify: cannot write %s\n", args.json_path.c_str());
      return 2;
    }
    f << json::Dump(report) << "\n";
  }
  std::printf("\na label is never published without its evidence: each row carries the\n"
              "derived utilization fractions the fixed-order threshold tree saw, and\n"
              "their raw counters reconcile with the run's touched-only StatSet.\n");
  return 0;
}
