// Substrate micro-benchmarks (google-benchmark): event queue, caches, NoC
// routing / signature selection, DRAM controller, and a whole-machine run.
// These guard against performance regressions in the simulator itself.

#include <benchmark/benchmark.h>

#include "arch/config.hpp"
#include "arch/trace.hpp"
#include "mem/cache.hpp"
#include "mem/memctrl.hpp"
#include "ndc/machine.hpp"
#include "noc/routing.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

using namespace ndc;

static void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue eq;
    long count = 0;
    for (int i = 0; i < 1000; ++i) {
      eq.ScheduleAt(static_cast<sim::Cycle>(i * 7 % 997), [&count] { ++count; });
    }
    eq.RunUntilEmpty();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

static void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache(mem::CacheParams{32 * 1024, 64, 2, 2});
  sim::Rng rng(7);
  for (auto _ : state) {
    sim::Addr a = rng.NextBelow(1 << 20);
    if (!cache.Access(a)) cache.Fill(a);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

static void BM_XyRoute(benchmark::State& state) {
  noc::Mesh mesh(5, 5);
  sim::Rng rng(13);
  for (auto _ : state) {
    auto s = static_cast<sim::NodeId>(rng.NextBelow(25));
    auto d = static_cast<sim::NodeId>(rng.NextBelow(25));
    benchmark::DoNotOptimize(noc::XyRoute(mesh, s, d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XyRoute);

static void BM_MaxOverlapRoutes(benchmark::State& state) {
  noc::Mesh mesh(5, 5);
  sim::Rng rng(17);
  for (auto _ : state) {
    auto a = static_cast<sim::NodeId>(rng.NextBelow(25));
    auto b = static_cast<sim::NodeId>(rng.NextBelow(25));
    auto c = static_cast<sim::NodeId>(rng.NextBelow(25));
    auto d = static_cast<sim::NodeId>(rng.NextBelow(25));
    benchmark::DoNotOptimize(noc::MaxOverlapRoutes(mesh, a, b, c, d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxOverlapRoutes);

static void BM_MemCtrlFrFcfs(benchmark::State& state) {
  mem::AddressMap amap;
  mem::DramParams dram;
  for (auto _ : state) {
    sim::EventQueue eq;
    mem::MemCtrl mc(0, amap, dram, eq);
    for (int i = 0; i < 64; ++i) {
      mc.EnqueueRead(static_cast<std::uint64_t>(i),
                     static_cast<sim::Addr>(i) * 4096 + (i % 3) * 64,
                     [](std::uint64_t, sim::Cycle) {});
    }
    eq.RunUntilEmpty();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MemCtrlFrFcfs);

static void BM_MachineRun(benchmark::State& state) {
  for (auto _ : state) {
    arch::ArchConfig cfg;
    runtime::Machine m(cfg);
    std::vector<arch::Trace> traces(25);
    for (int c = 0; c < 25; ++c) {
      arch::Trace t;
      for (int i = 0; i < 50; ++i) {
        int l0 = static_cast<int>(t.size());
        t.push_back(arch::MakeLoad(static_cast<sim::Addr>(c) * 65536 + i * 640));
        t.push_back(arch::MakeLoad(static_cast<sim::Addr>(c) * 65536 + i * 640 + 6400));
        t.push_back(arch::MakeCompute(arch::Op::kAdd, l0, l0 + 1, true));
      }
      traces[static_cast<std::size_t>(c)] = std::move(t);
    }
    m.LoadProgram(std::move(traces));
    benchmark::DoNotOptimize(m.Run().makespan);
  }
}
BENCHMARK(BM_MachineRun)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
