// Figure 16: L1 and L2 miss rates under Algorithm 1 vs Algorithm 2.
//
// Paper: Algorithm 2 produces lower miss rates in all 20 benchmarks —
// it skips offloads whose squashed line fills would have been reused.

#include <cstdio>

#include "bench_common.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall);
  benchutil::PrintHeader("Figure 16: L1/L2 miss rates, Algorithm 1 vs Algorithm 2", args);

  std::printf("%-10s | %9s %9s | %9s %9s |\n", "benchmark", "L1 alg-1", "L1 alg-2",
              "L2 alg-1", "L2 alg-2");
  int lower_l1 = 0, lower_l2 = 0, n = 0;
  benchutil::ForEachBenchmark(args, [&](const std::string& name) {
    arch::ArchConfig cfg;
    metrics::Experiment exp(name, args.scale, cfg);
    metrics::SchemeResult a1 = exp.Run(metrics::Scheme::kAlgorithm1);
    metrics::SchemeResult a2 = exp.Run(metrics::Scheme::kAlgorithm2);
    std::printf("%-10s | %8.1f%% %8.1f%% | %8.1f%% %8.1f%% |%s\n", name.c_str(),
                a1.run.L1MissRate() * 100, a2.run.L1MissRate() * 100,
                a1.run.L2MissRate() * 100, a2.run.L2MissRate() * 100,
                a2.run.L1MissRate() <= a1.run.L1MissRate() ? "" : "  (alg-2 higher)");
    lower_l1 += a2.run.L1MissRate() <= a1.run.L1MissRate() + 1e-9;
    lower_l2 += a2.run.L2MissRate() <= a1.run.L2MissRate() + 1e-9;
    ++n;
  });
  std::printf("\nAlgorithm 2 miss rate <= Algorithm 1 in %d/%d (L1) and %d/%d (L2) "
              "benchmarks (paper: all 20 for both levels)\n",
              lower_l1, n, lower_l2, n);
  return 0;
}
