// Figure 16: L1 and L2 miss rates under Algorithm 1 vs Algorithm 2 (paper:
// Algorithm 2 produces lower miss rates in all 20 benchmarks).
//
// Thin wrapper: the grid/render logic lives in src/harness ("fig16").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("fig16", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
