// Section 5.4 text ablations: (1) no-reroute — disable NoC signature
// co-selection; (2) coarse-grain mapping — whole loop nests to one location
// instead of individual computations.
//
// Thin wrapper: the grid/render logic lives in src/harness ("abl").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("abl", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
