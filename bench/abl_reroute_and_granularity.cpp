// Section 5.4 text ablations:
//  (1) no-reroute: disable the NoC signature co-selection — the paper
//      reports ~40% fewer computations performed in message routers;
//  (2) coarse-grain mapping: map whole loop nests to one location instead
//      of individual computations — the paper reports only 1.2% / 2.5%
//      improvements, concluding fine-grain mapping is critical.

#include <cstdio>

#include "bench_common.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall);
  benchutil::PrintHeader("Ablations: route co-selection and mapping granularity", args);

  std::printf("%-10s | %10s %10s %7s | %9s %9s\n", "benchmark", "router NDC",
              "no-reroute", "drop", "coarse-1", "fine-1");
  double router_with = 0, router_without = 0;
  std::vector<double> coarse_ratio, fine_ratio;
  benchutil::ForEachBenchmark(args, [&](const std::string& name) {
    arch::ArchConfig cfg;
    metrics::Experiment exp(name, args.scale, cfg);

    compiler::CompileOptions with;
    with.mode = compiler::Mode::kAlgorithm1;
    metrics::SchemeResult rw = exp.RunCompiled(with);

    compiler::CompileOptions without = with;
    without.allow_reroute = false;
    metrics::SchemeResult rwo = exp.RunCompiled(without);

    compiler::CompileOptions coarse;
    coarse.mode = compiler::Mode::kCoarseGrain;
    metrics::SchemeResult rc = exp.RunCompiled(coarse);

    std::uint64_t net_w = rw.run.ndc_at_loc[static_cast<std::size_t>(arch::Loc::kLinkBuffer)];
    std::uint64_t net_wo =
        rwo.run.ndc_at_loc[static_cast<std::size_t>(arch::Loc::kLinkBuffer)];
    double drop = net_w == 0 ? 0.0
                             : 100.0 * (static_cast<double>(net_w) - static_cast<double>(net_wo)) /
                                   static_cast<double>(net_w);
    std::printf("%-10s | %10llu %10llu %6.1f%% | %+8.1f%% %+8.1f%%\n", name.c_str(),
                static_cast<unsigned long long>(net_w),
                static_cast<unsigned long long>(net_wo), drop, rc.improvement_pct,
                rw.improvement_pct);
    std::fflush(stdout);
    router_with += static_cast<double>(net_w);
    router_without += static_cast<double>(net_wo);
    sim::Cycle base = exp.Baseline().makespan;
    coarse_ratio.push_back(static_cast<double>(base) /
                           static_cast<double>(std::max<sim::Cycle>(1, rc.run.makespan)));
    fine_ratio.push_back(static_cast<double>(base) /
                         static_cast<double>(std::max<sim::Cycle>(1, rw.run.makespan)));
  });
  double total_drop = router_with == 0 ? 0.0
                                       : 100.0 * (router_with - router_without) / router_with;
  std::printf("\nrouter NDC reduction without rerouting: %.1f%% (paper: ~40%%)\n",
              total_drop);
  std::printf("coarse-grain geomean improvement: %+.1f%% vs fine-grain %+.1f%% "
              "(paper: 1.2%% vs 22.5%% — fine-grain mapping is critical)\n",
              (1.0 - 1.0 / sim::GeometricMean(coarse_ratio)) * 100.0,
              (1.0 - 1.0 / sim::GeometricMean(fine_ratio)) * 100.0);
  return 0;
}
