// Diagnostic: baseline congestion counters and oracle/Algorithm-1 benefit
// as a function of the core's outstanding-load (MLP) window on md.
// A development aid, not a paper figure.
//
// Thin wrapper: the grid/render logic lives in src/harness
// ("diag_congestion").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("diag_congestion", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
