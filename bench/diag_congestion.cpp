// Diagnostic: baseline congestion counters and oracle/Algorithm-1 benefit
// as a function of the core's outstanding-load (MLP) window on md.
// A development aid, not a paper figure.

#include <cstdio>
#include "metrics/experiment.hpp"
using namespace ndc;
int main() {
  for (int mlp : {8, 16, 32}) {
    arch::ArchConfig cfg;
    cfg.max_outstanding_loads = mlp;
    metrics::Experiment exp("md", workloads::Scale::kSmall, cfg);
    const auto& b = exp.Baseline();
    auto orc = exp.Run(metrics::Scheme::kOracle);
    auto a1 = exp.Run(metrics::Scheme::kAlgorithm1);
    std::printf("mlp=%2d base=%8llu contention=%8llu mcwait=%8llu | oracle %+5.1f%% (ndc=%llu) | alg1 %+5.1f%% (ndc=%llu)\n",
      mlp, (unsigned long long)b.makespan,
      (unsigned long long)b.stats.Get("noc.contention_cycles"),
      (unsigned long long)b.stats.Get("mc.queue_wait_cycles"),
      orc.improvement_pct, (unsigned long long)orc.run.ndc_success,
      a1.improvement_pct, (unsigned long long)a1.run.ndc_success);
  }
  return 0;
}
