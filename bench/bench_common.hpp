#pragma once

// Shared helpers for the figure-regeneration bench binaries.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "metrics/experiment.hpp"

namespace ndc::benchutil {

struct Args {
  workloads::Scale scale = workloads::Scale::kSmall;
  std::string only;  ///< run a single benchmark when non-empty
};

inline Args Parse(int argc, char** argv, workloads::Scale default_scale) {
  Args a;
  a.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale=test") == 0) a.scale = workloads::Scale::kTest;
    if (std::strcmp(argv[i], "--scale=small") == 0) a.scale = workloads::Scale::kSmall;
    if (std::strcmp(argv[i], "--scale=full") == 0) a.scale = workloads::Scale::kFull;
    if (std::strncmp(argv[i], "--bench=", 8) == 0) a.only = argv[i] + 8;
  }
  return a;
}

inline const char* ScaleName(workloads::Scale s) {
  switch (s) {
    case workloads::Scale::kTest: return "test";
    case workloads::Scale::kSmall: return "small";
    case workloads::Scale::kFull: return "full";
  }
  return "?";
}

template <typename Fn>
void ForEachBenchmark(const Args& a, Fn&& fn) {
  for (const std::string& name : workloads::BenchmarkNames()) {
    if (!a.only.empty() && name != a.only) continue;
    fn(name);
  }
}

inline void PrintHeader(const char* what, const Args& a) {
  std::printf("# %s  (scale=%s, Table-1 configuration)\n", what, ScaleName(a.scale));
}

}  // namespace ndc::benchutil
