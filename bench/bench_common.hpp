#pragma once

// Shared helpers for the figure-regeneration bench binaries.
//
// Every binary goes through benchutil::Parse, which is strict: an unknown
// or misspelled argument (e.g. --scale=ful) prints a usage message and
// exits non-zero instead of being silently ignored.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/figures.hpp"
#include "metrics/experiment.hpp"

namespace ndc::benchutil {

struct ParseSpec {
  bool positional_name = false;  ///< accept one leading positional workload name
  bool allow_all = false;        ///< accept the --all flag (export_records)
};

struct Args {
  workloads::Scale scale = workloads::Scale::kSmall;
  std::string only;        ///< run a single benchmark when non-empty
  int jobs = 1;            ///< sweep worker threads (--jobs=N)
  bool use_cache = true;   ///< --no-cache disables the on-disk result cache
  std::string cache_dir = ".ndc-cache";
  bool progress = false;   ///< --progress: live progress/ETA lines on stderr
  std::string export_jsonl;
  std::string export_csv;
  std::string export_obs;  ///< per-cell obs-summary directory ("" = off)
  std::string positional;  ///< leading positional name (ParseSpec::positional_name)
  bool all = false;        ///< --all (ParseSpec::allow_all)
};

[[noreturn]] inline void UsageAndExit(const char* prog, const ParseSpec& spec) {
  std::fprintf(stderr,
               "usage: %s%s%s [--scale=test|small|full] [--bench=NAME] [--jobs=N]\n"
               "         [--no-cache] [--cache-dir=DIR] [--progress]\n"
               "         [--export-jsonl=FILE] [--export-csv=FILE] [--export-obs=DIR]\n",
               prog, spec.positional_name ? " [WORKLOAD]" : "",
               spec.allow_all ? " [--all]" : "");
  std::exit(2);
}

inline Args Parse(int argc, char** argv, workloads::Scale default_scale,
                  const ParseSpec& spec = {}) {
  Args a;
  a.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (spec.positional_name && i == 1 && arg[0] != '-') {
      a.positional = arg;
    } else if (std::strcmp(arg, "--scale=test") == 0) {
      a.scale = workloads::Scale::kTest;
    } else if (std::strcmp(arg, "--scale=small") == 0) {
      a.scale = workloads::Scale::kSmall;
    } else if (std::strcmp(arg, "--scale=full") == 0) {
      a.scale = workloads::Scale::kFull;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      std::fprintf(stderr, "%s: unknown scale '%s' (expected test|small|full)\n",
                   argv[0], arg + 8);
      UsageAndExit(argv[0], spec);
    } else if (std::strncmp(arg, "--bench=", 8) == 0) {
      a.only = arg + 8;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      char* end = nullptr;
      long n = std::strtol(arg + 7, &end, 10);
      if (end == nullptr || *end != '\0' || n < 1) {
        std::fprintf(stderr, "%s: --jobs expects a positive integer, got '%s'\n",
                     argv[0], arg + 7);
        UsageAndExit(argv[0], spec);
      }
      a.jobs = static_cast<int>(n);
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      a.use_cache = false;
    } else if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
      a.cache_dir = arg + 12;
    } else if (std::strcmp(arg, "--progress") == 0) {
      a.progress = true;
    } else if (std::strncmp(arg, "--export-jsonl=", 15) == 0) {
      a.export_jsonl = arg + 15;
    } else if (std::strncmp(arg, "--export-csv=", 13) == 0) {
      a.export_csv = arg + 13;
    } else if (std::strncmp(arg, "--export-obs=", 13) == 0) {
      a.export_obs = arg + 13;
    } else if (spec.allow_all && std::strcmp(arg, "--all") == 0) {
      a.all = true;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg);
      UsageAndExit(argv[0], spec);
    }
  }
  return a;
}

inline harness::FigureOptions ToFigureOptions(const Args& a) {
  harness::FigureOptions opt;
  opt.scale = a.scale;
  opt.only = a.only;
  opt.jobs = a.jobs;
  opt.use_cache = a.use_cache;
  opt.cache_dir = a.cache_dir;
  opt.progress = a.progress;
  opt.export_jsonl = a.export_jsonl;
  opt.export_csv = a.export_csv;
  opt.export_obs = a.export_obs;
  return opt;
}

/// Runs one registered harness figure with the parsed options — the whole
/// main() of a ported figure binary.
inline int RunFigureMain(const char* figure, int argc, char** argv,
                         workloads::Scale default_scale) {
  Args args = Parse(argc, argv, default_scale);
  return harness::RunFigure(figure, ToFigureOptions(args));
}

inline const char* ScaleName(workloads::Scale s) { return harness::ScaleName(s); }

template <typename Fn>
void ForEachBenchmark(const Args& a, Fn&& fn) {
  for (const std::string& name : workloads::BenchmarkNames()) {
    if (!a.only.empty() && name != a.only) continue;
    fn(name);
  }
}

inline void PrintHeader(const char* what, const Args& a) {
  std::printf("# %s  (scale=%s, Table-1 configuration)\n", what, ScaleName(a.scale));
}

}  // namespace ndc::benchutil
