// Diagnostic: decompose Algorithm 1's benefit into (a) code restructuring
// only (pre-computes ignored at run time) and (b) full NDC execution, and
// compare oracle acceptance counts. Development aid.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "compiler/codegen.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::ParseSpec pspec;
  pspec.positional_name = true;
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall, pspec);
  std::string name = args.positional.empty() ? "md" : args.positional;
  workloads::Scale scale = args.scale;
  arch::ArchConfig cfg;

  metrics::Experiment exp(name, scale, cfg);
  sim::Cycle base = exp.Baseline().makespan;
  std::printf("%s baseline: %llu cycles\n", name.c_str(), (unsigned long long)base);

  // Compile once with Algorithm 1.
  ir::Program prog = workloads::BuildWorkload(name, scale, 1);
  compiler::ArchDescription ad(cfg);
  compiler::CompileOptions copt;
  copt.mode = compiler::Mode::kAlgorithm1;
  compiler::CompileReport rep = compiler::Compile(prog, ad, copt);
  auto traces = compiler::Lower(prog, cfg.num_nodes(), &cfg).traces;
  std::printf("compile: chains=%llu planned=%llu transforms=%llu\n",
              (unsigned long long)rep.chains, (unsigned long long)rep.planned,
              (unsigned long long)rep.transforms);

  for (bool honor : {false, true}) {
    runtime::MachineOptions mo;
    mo.honor_precompute = honor;
    runtime::Machine m(cfg, mo);
    m.LoadProgram(traces);
    runtime::RunResult r = m.Run();
    std::printf("  %-22s: %8llu cycles (%+.1f%%) ndc=%llu fb=%llu l1miss=%.1f%%\n",
                honor ? "restructured + NDC" : "restructured only",
                (unsigned long long)r.makespan, metrics::ImprovementPct(base, r.makespan),
                (unsigned long long)r.ndc_success, (unsigned long long)r.fallbacks,
                r.L1MissRate() * 100);
  }
  metrics::SchemeResult orc = exp.Run(metrics::Scheme::kOracle);
  std::printf("  %-22s: %8llu cycles (%+.1f%%) ndc=%llu fb=%llu\n", "oracle",
              (unsigned long long)orc.run.makespan, orc.improvement_pct,
              (unsigned long long)orc.run.ndc_success,
              (unsigned long long)orc.run.fallbacks);
  return 0;
}
