// Figure 17: sensitivity study. Each experiment changes ONE parameter from
// the Table-1 defaults and reports the geometric-mean improvement of
// Algorithm 1, Algorithm 2, and the Oracle across all 20 benchmarks:
//   - manycore size 4x4 / 5x5 (default) / 6x6
//   - L2 bank capacity 256 KB / 512 KB (default) / 1 MB
//   - offloadable ops restricted to {+,-} (paper: Alg-1 14.1%, Alg-2 16.5%)

#include <cstdio>
#include <functional>

#include "bench_common.hpp"

using namespace ndc;

namespace {

struct Variant {
  const char* name;
  std::function<void(arch::ArchConfig&)> apply;
};

}  // namespace

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall);
  benchutil::PrintHeader("Figure 17: sensitivity to mesh size, L2 capacity, op set", args);

  const Variant variants[] = {
      {"default-5x5", [](arch::ArchConfig&) {}},
      {"mesh-4x4",
       [](arch::ArchConfig& c) {
         c.mesh_width = 4;
         c.mesh_height = 4;
       }},
      {"mesh-6x6",
       [](arch::ArchConfig& c) {
         c.mesh_width = 6;
         c.mesh_height = 6;
       }},
      {"L2-256KB", [](arch::ArchConfig& c) { c.l2.size_bytes = 256 * 1024; }},
      {"L2-1MB", [](arch::ArchConfig& c) { c.l2.size_bytes = 1024 * 1024; }},
      {"ops-addsub-only", [](arch::ArchConfig& c) { c.restrict_ops_to_addsub = true; }},
  };

  std::printf("%-16s %12s %12s %12s   (geomean improvement over the variant's own "
              "baseline)\n",
              "variant", "Algorithm-1", "Algorithm-2", "Oracle");
  for (const Variant& v : variants) {
    std::vector<double> r1, r2, ro;
    benchutil::ForEachBenchmark(args, [&](const std::string& name) {
      arch::ArchConfig cfg;
      v.apply(cfg);
      metrics::Experiment exp(name, args.scale, cfg);
      sim::Cycle base = exp.Baseline().makespan;
      auto ratio = [&](metrics::Scheme s) {
        metrics::SchemeResult r = exp.Run(s);
        return static_cast<double>(base) /
               static_cast<double>(std::max<sim::Cycle>(1, r.run.makespan));
      };
      r1.push_back(ratio(metrics::Scheme::kAlgorithm1));
      r2.push_back(ratio(metrics::Scheme::kAlgorithm2));
      ro.push_back(ratio(metrics::Scheme::kOracle));
    });
    auto pct = [](const std::vector<double>& v2) {
      return (1.0 - 1.0 / sim::GeometricMean(v2)) * 100.0;
    };
    std::printf("%-16s %+11.1f%% %+11.1f%% %+11.1f%%\n", v.name, pct(r1), pct(r2), pct(ro));
    std::fflush(stdout);
  }
  std::printf("\npaper findings: benefits grow with mesh size (more NDC locations);\n"
              "insensitive to L2 capacity (the NDC location shifts, the amount does not);\n"
              "restricting ops to +/- still yields 14.1%% / 16.5%% for Alg-1 / Alg-2.\n");
  return 0;
}
