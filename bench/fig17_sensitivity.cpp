// Figure 17: sensitivity study — mesh size 4x4/5x5/6x6, L2 bank capacity
// 256KB/512KB/1MB, and offloadable ops restricted to {+,-}, reporting the
// geomean improvement of Algorithm 1/2 and the Oracle.
//
// Thin wrapper: the grid/render logic lives in src/harness ("fig17").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("fig17", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
