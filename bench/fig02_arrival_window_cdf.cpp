// Figure 2: distribution of arrival windows (CDF, truncated at 50%) at the
// four NDC locations — (a) link buffer, (b) L2 controller, (c) memory
// controller, (d) main memory — for each of the 20 benchmarks.
//
// Thin wrapper: the grid/render logic lives in src/harness (RunFig02).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("fig02", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
