// Figure 2: distribution of arrival windows (CDF, truncated at 50%) at the
// four NDC locations — (a) link buffer, (b) L2 controller, (c) memory
// controller, (d) main memory — for each of the 20 benchmarks.
//
// "500+" includes windows above 500 cycles and pairs whose operands never
// meet at the location (e.g. paths that do not intersect on the network).

#include <array>
#include <cstdio>

#include "bench_common.hpp"
#include "ndc/record.hpp"
#include "sim/stats.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall);
  benchutil::PrintHeader("Figure 2: arrival-window CDF per NDC location", args);

  const std::array<arch::Loc, 4> locs = {arch::Loc::kLinkBuffer, arch::Loc::kCacheCtrl,
                                         arch::Loc::kMemCtrl, arch::Loc::kMemBank};
  const char* panel[4] = {"(a) link buffer", "(b) L2 controller", "(c) memory controller",
                          "(d) main memory"};

  // Collect histograms per (benchmark, loc).
  std::vector<std::string> names;
  std::vector<std::array<sim::BucketHistogram, 4>> hists;
  benchutil::ForEachBenchmark(args, [&](const std::string& name) {
    arch::ArchConfig cfg;
    metrics::Experiment exp(name, args.scale, cfg);
    const auto& obs = exp.Observe();
    std::array<sim::BucketHistogram, 4> h;
    obs.records->ForEach([&](const runtime::InstanceRecord& rec) {
      if (rec.local_l1) return;
      for (std::size_t l = 0; l < locs.size(); ++l) {
        const runtime::LocObs& o = rec.at(locs[l]);
        if (!o.feasible) continue;  // the location can never serve this pair
        h[l].Add(o.Window());       // kNeverCycle falls into 500+
      }
    });
    names.push_back(name);
    hists.push_back(std::move(h));
  });

  for (std::size_t l = 0; l < locs.size(); ++l) {
    std::printf("\n%s — cumulative %% of windows <= bucket edge (paper truncates at 50%%)\n",
                panel[l]);
    std::printf("%-10s %6s %6s %6s %6s %6s %6s %6s\n", "benchmark", "<=1", "<=10", "<=20",
                "<=50", "<=100", "<=500", "500+");
    for (std::size_t b = 0; b < names.size(); ++b) {
      const sim::BucketHistogram& h = hists[b][l];
      std::printf("%-10s", names[b].c_str());
      for (std::size_t e = 0; e < 6; ++e) {
        std::printf(" %5.1f%%", h.CumulativeFraction(e) * 100.0);
      }
      std::printf(" %5.1f%%\n", h.Fraction(6) * 100.0);
    }
  }
  std::printf("\npaper example: swim <=20cy at cache controller ~14.3%%, at MC ~7.7%%;\n"
              "applu <=20cy at cache ~26.7%% vs raytrace ~8.6%% — windows vary widely by\n"
              "benchmark and location.\n");
  return 0;
}
