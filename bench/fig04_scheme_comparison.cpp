// Figure 4: performance benefits with different NDC schemes, per benchmark
// (Default, Oracle, Wait(5/10/25/50%), Last Wait, Algorithm-1/2 improvement
// over the original execution).
//
// Thin wrapper: the grid/render logic lives in src/harness ("fig04").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("fig04", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
