// Figure 4: performance benefits with different NDC schemes, per benchmark.
//
// Regenerates the paper's series: Default (wait until the second operand
// arrives), Oracle, Wait(5/10/25/50%), Last Wait, Algorithm-1, Algorithm-2 —
// improvement (%) over the original (conventional) execution.
//
// Usage: fig04_scheme_comparison [--scale=test|small|full] [--bench=NAME]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "metrics/experiment.hpp"
#include "sim/stats.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  workloads::Scale scale = workloads::Scale::kSmall;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale=test") == 0) scale = workloads::Scale::kTest;
    if (std::strcmp(argv[i], "--scale=full") == 0) scale = workloads::Scale::kFull;
    if (std::strncmp(argv[i], "--bench=", 8) == 0) only = argv[i] + 8;
  }

  const std::vector<metrics::Scheme> schemes = {
      metrics::Scheme::kDefault, metrics::Scheme::kOracle,  metrics::Scheme::kWait5,
      metrics::Scheme::kWait10,  metrics::Scheme::kWait25,  metrics::Scheme::kWait50,
      metrics::Scheme::kLastWait, metrics::Scheme::kMarkov,
      metrics::Scheme::kAlgorithm1, metrics::Scheme::kAlgorithm2};

  std::printf("# Figure 4: performance improvement (%%) over the original execution\n");
  std::printf("%-10s", "benchmark");
  for (metrics::Scheme s : schemes) std::printf(" %11s", metrics::SchemeName(s));
  std::printf("\n");

  std::vector<std::vector<double>> ratios(schemes.size());
  for (const std::string& name : workloads::BenchmarkNames()) {
    if (!only.empty() && name != only) continue;
    arch::ArchConfig cfg;
    metrics::Experiment exp(name, scale, cfg);
    std::printf("%-10s", name.c_str());
    std::fflush(stdout);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      metrics::SchemeResult r = exp.Run(schemes[i]);
      std::printf(" %+10.1f%%", r.improvement_pct);
      std::fflush(stdout);
      ratios[i].push_back(
          static_cast<double>(exp.Baseline().makespan) /
          static_cast<double>(std::max<sim::Cycle>(1, r.run.makespan)));
    }
    std::printf("\n");
  }
  if (only.empty()) {
    std::printf("%-10s", "geomean");
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      double g = sim::GeometricMean(ratios[i]);
      std::printf(" %+10.1f%%", (1.0 - 1.0 / g) * 100.0);
    }
    std::printf("\n");
    std::printf("\npaper:   Default -16.7%%, Oracle +29.3%%, Wait(5..50%%) -15.1..-13.4%%, "
                "LastWait -4.3%% (Markov similar), Alg-1 +22.5%%, Alg-2 +25.2%%\n");
  }
  return 0;
}
