// bench_resilience — degradation curve of an NDC scheme under synthetic
// fault storms of increasing intensity.
//
// For each benchmark, runs the scheme fault-free (the healthy reference),
// then once per --intensities factor under a MakeStorm schedule scaled to
// that intensity: NoC link outages/slowdowns, DRAM bank stall/NACK windows,
// and MC queue-pressure spikes, with the timeout/retry/degrade machinery
// enabled. Prints one table row per (benchmark, intensity) and optionally
// writes the full curve as a JSON report (--json=FILE).
//
// After every faulted run the request-conservation invariant is checked:
// every issued request must be accounted for as completed, degraded to the
// host core, or dropped-and-retransmitted. A violation prints the failing
// identities and exits 1 — faults may slow a run down, never lose work.
//
// Storms are deterministic: the same --storm-seed reproduces the same
// windows and the same in-run fault draws, so every row is replayable.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault.hpp"

namespace {

using ndc::benchutil::Args;
using ndc::fault::CheckConservation;
using ndc::fault::ConservationReport;
using ndc::fault::FaultSchedule;
using ndc::fault::InjectionCounts;
using ndc::fault::MakeStorm;
using ndc::fault::StormSpec;
namespace json = ndc::harness::json;

struct ResArgs {
  ndc::workloads::Scale scale = ndc::workloads::Scale::kSmall;
  std::string only;
  std::vector<double> intensities = {0.25, 0.5, 0.75, 1.0};
  std::uint64_t storm_seed = 1;
  int max_retries = 2;
  std::string json_path;
};

[[noreturn]] void UsageAndExit(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--scale=test|small|full] [--bench=NAME]\n"
               "         [--intensities=X,Y,...] [--storm-seed=N] [--max-retries=N]\n"
               "         [--json=FILE]\n",
               prog);
  std::exit(2);
}

ResArgs Parse(int argc, char** argv) {
  ResArgs a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--scale=test") == 0) {
      a.scale = ndc::workloads::Scale::kTest;
    } else if (std::strcmp(arg, "--scale=small") == 0) {
      a.scale = ndc::workloads::Scale::kSmall;
    } else if (std::strcmp(arg, "--scale=full") == 0) {
      a.scale = ndc::workloads::Scale::kFull;
    } else if (std::strncmp(arg, "--bench=", 8) == 0) {
      a.only = arg + 8;
    } else if (std::strncmp(arg, "--intensities=", 14) == 0) {
      a.intensities.clear();
      const char* p = arg + 14;
      while (*p != '\0') {
        char* end = nullptr;
        double v = std::strtod(p, &end);
        if (end == p || v < 0.0) UsageAndExit(argv[0]);
        a.intensities.push_back(v);
        p = (*end == ',') ? end + 1 : end;
      }
      if (a.intensities.empty()) UsageAndExit(argv[0]);
    } else if (std::strncmp(arg, "--storm-seed=", 13) == 0) {
      a.storm_seed = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strncmp(arg, "--max-retries=", 14) == 0) {
      a.max_retries = std::atoi(arg + 14);
      if (a.max_retries < 0) UsageAndExit(argv[0]);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      a.json_path = arg + 7;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg);
      UsageAndExit(argv[0]);
    }
  }
  return a;
}

json::Value RowJson(const std::string& workload, double intensity,
                    const ndc::metrics::SchemeResult& r, std::uint64_t healthy,
                    std::uint64_t retries, std::uint64_t degraded,
                    const InjectionCounts& inj, bool conserved) {
  json::Value row = json::Value::Object();
  row.obj["workload"] = json::Value::Str(workload);
  row.obj["intensity"] = json::Value::Double(intensity);
  row.obj["makespan"] = json::Value::Int(r.run.makespan);
  row.obj["healthy_makespan"] = json::Value::Int(healthy);
  double slowdown = healthy == 0 ? 0.0
                                 : (static_cast<double>(r.run.makespan) /
                                        static_cast<double>(healthy) -
                                    1.0) * 100.0;
  row.obj["slowdown_pct"] = json::Value::Double(slowdown);
  row.obj["events"] = json::Value::Int(r.run.events);
  row.obj["events_per_cycle"] = json::Value::Double(
      r.run.makespan == 0 ? 0.0
                          : static_cast<double>(r.run.events) /
                                static_cast<double>(r.run.makespan));
  row.obj["offloads"] = json::Value::Int(r.run.offloads);
  row.obj["ndc_success"] = json::Value::Int(r.run.ndc_success);
  row.obj["fallbacks"] = json::Value::Int(r.run.fallbacks);
  row.obj["retries"] = json::Value::Int(retries);
  row.obj["degraded_to_host"] = json::Value::Int(degraded);
  json::Value injected = json::Value::Object();
  injected.obj["link_delays"] = json::Value::Int(inj.link_delays);
  injected.obj["link_drops"] = json::Value::Int(inj.link_drops);
  injected.obj["bank_stalls"] = json::Value::Int(inj.bank_stalls);
  injected.obj["bank_nacks"] = json::Value::Int(inj.bank_nacks);
  injected.obj["mc_pressure_hits"] = json::Value::Int(inj.mc_pressure_hits);
  row.obj["injected"] = injected;
  row.obj["conserved"] = json::Value::Bool(conserved);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ResArgs args = Parse(argc, argv);
  const ndc::metrics::Scheme scheme = ndc::metrics::Scheme::kAlgorithm1;
  ndc::arch::ArchConfig cfg;

  std::printf("# Resilience degradation curve: %s under synthetic fault storms  "
              "(scale=%s, storm-seed=%llu, max-retries=%d)\n",
              ndc::metrics::SchemeName(scheme), ndc::benchutil::ScaleName(args.scale),
              static_cast<unsigned long long>(args.storm_seed), args.max_retries);
  std::printf("%-10s %9s %10s %9s %8s %8s %8s %7s %7s %7s  %s\n", "benchmark",
              "intensity", "makespan", "slowdown", "offloads", "degraded", "retries",
              "drops", "nacks", "stalls", "ok");

  json::Value rows = json::Value::Array();
  for (const std::string& w : ndc::workloads::BenchmarkNames()) {
    if (!args.only.empty() && w != args.only) continue;
    ndc::metrics::Experiment exp(w, args.scale, cfg);

    // Healthy reference: the scheme fault-free (the curve's y-axis origin).
    ndc::metrics::SchemeResult healthy = exp.Run(scheme);
    std::uint64_t href = healthy.run.makespan;
    std::printf("%-10s %9s %10llu %+8.1f%% %8llu %8u %8u %7u %7u %7u  %s\n", w.c_str(),
                "healthy", static_cast<unsigned long long>(href), 0.0,
                static_cast<unsigned long long>(healthy.run.offloads), 0u, 0u, 0u, 0u,
                0u, "yes");
    rows.arr.push_back(RowJson(w, 0.0, healthy, href, 0, 0, InjectionCounts{}, true));

    // Storm windows must overlap the run; size the horizon off the healthy
    // makespan (faulted runs only stretch past it, never shrink under it).
    StormSpec storm;
    storm.num_links = static_cast<std::uint64_t>(cfg.num_nodes()) * 4;
    storm.num_mcs = static_cast<std::uint64_t>(cfg.num_mcs);
    storm.banks_per_mc = static_cast<std::uint64_t>(cfg.MakeAddressMap().banks_per_mc);
    storm.horizon = href;
    storm.seed = args.storm_seed;
    storm.max_retries = args.max_retries;

    for (double x : args.intensities) {
      storm.intensity = x;
      FaultSchedule sched = MakeStorm(storm);
      exp.set_faults(&sched);
      ndc::metrics::SchemeResult r = exp.Run(scheme);
      exp.set_faults(nullptr);

      std::uint64_t retries = r.run.stats.Get("ndc.retries");
      std::uint64_t degraded = r.run.stats.Get("ndc.degraded_to_host");
      InjectionCounts inj = exp.last_injections();
      ConservationReport rep = CheckConservation(exp.last_conservation());
      double slowdown = href == 0 ? 0.0
                                  : (static_cast<double>(r.run.makespan) /
                                         static_cast<double>(href) -
                                     1.0) * 100.0;
      std::printf("%-10s %9.2f %10llu %+8.1f%% %8llu %8llu %8llu %7llu %7llu %7llu  %s\n",
                  w.c_str(), x, static_cast<unsigned long long>(r.run.makespan), slowdown,
                  static_cast<unsigned long long>(r.run.offloads),
                  static_cast<unsigned long long>(degraded),
                  static_cast<unsigned long long>(retries),
                  static_cast<unsigned long long>(inj.link_drops),
                  static_cast<unsigned long long>(inj.bank_nacks),
                  static_cast<unsigned long long>(inj.bank_stalls),
                  rep.ok ? "yes" : "NO");
      rows.arr.push_back(RowJson(w, x, r, href, retries, degraded, inj, rep.ok));
      if (!rep.ok) {
        std::fprintf(stderr, "bench_resilience: conservation violated (%s, x=%.2f):\n%s",
                     w.c_str(), x, rep.ToString().c_str());
        return 1;
      }
    }
  }

  if (!args.json_path.empty()) {
    json::Value report = json::Value::Object();
    report.obj["bench"] = json::Value::Str("resilience");
    report.obj["scheme"] = json::Value::Str(ndc::metrics::SchemeName(scheme));
    report.obj["scale"] = json::Value::Str(ndc::benchutil::ScaleName(args.scale));
    report.obj["storm_seed"] = json::Value::Int(args.storm_seed);
    report.obj["max_retries"] = json::Value::Int(static_cast<std::uint64_t>(args.max_retries));
    report.obj["rows"] = rows;
    std::ofstream f(args.json_path);
    if (!f) {
      std::fprintf(stderr, "bench_resilience: cannot write %s\n", args.json_path.c_str());
      return 2;
    }
    f << json::Dump(report) << "\n";
  }
  std::printf("\nfaults slow execution down but never lose requests: every offload either\n"
              "completes near data, falls back, or is degraded to the host core after\n"
              "exhausting its retry budget.\n");
  return 0;
}
