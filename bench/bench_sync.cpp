// bench_sync — contention curve of the synchronization subsystem.
//
// Sweeps the active shard (core) count k while the machine stays at the
// Table-1 configuration: k shards of a sync-lowered workload block-
// distribute onto cores 0..k-1, so every added shard adds one more
// contender on the same atomic cell / ticket lock / barrier. For each
// (workload, k) prints makespan plus the two contention signals the
// engines expose — total stall cycles (grant minus issue, the cores'
// view) and queue-wait cycles (service minus arrival, the engines' view)
// — with per-op averages, and optionally writes the full curve as a JSON
// report (--json=FILE).
//
// After every run the request-conservation invariant is checked; it now
// covers the sync engines' issued-vs-granted accounting (atomics, lock
// acquire/release pairing, barrier arrivals vs departures). A violation
// prints the failing identities and exits 1 — contention may serialize a
// run, never lose or double-grant a request.
//
// Runs are deterministic: the same (workload, scale, k) reproduces the
// same makespan, counters, and final atomic-cell values, so every row is
// replayable bit-for-bit.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "compiler/codegen.hpp"
#include "fault/fault.hpp"
#include "workloads/sharded.hpp"

namespace {

using ndc::fault::CheckConservation;
using ndc::fault::ConservationReport;
namespace json = ndc::harness::json;

const char* const kSyncWorkloads[] = {"shard.reduce.atomic", "shard.reduce.lock",
                                      "shard.stencil.wave"};

struct SyncArgs {
  ndc::workloads::Scale scale = ndc::workloads::Scale::kSmall;
  std::string only;
  std::vector<int> cores = {1, 2, 4, 8, 16, 25};
  std::string json_path;
};

[[noreturn]] void UsageAndExit(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--scale=test|small|full] [--bench=NAME]\n"
               "         [--cores=K1,K2,...] [--json=FILE|--out=FILE]\n",
               prog);
  std::exit(2);
}

SyncArgs Parse(int argc, char** argv) {
  SyncArgs a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--scale=test") == 0) {
      a.scale = ndc::workloads::Scale::kTest;
    } else if (std::strcmp(arg, "--scale=small") == 0) {
      a.scale = ndc::workloads::Scale::kSmall;
    } else if (std::strcmp(arg, "--scale=full") == 0) {
      a.scale = ndc::workloads::Scale::kFull;
    } else if (std::strncmp(arg, "--bench=", 8) == 0) {
      a.only = arg + 8;
    } else if (std::strncmp(arg, "--cores=", 8) == 0) {
      a.cores.clear();
      const char* p = arg + 8;
      while (*p != '\0') {
        char* end = nullptr;
        long v = std::strtol(p, &end, 10);
        if (end == p || v < 1) UsageAndExit(argv[0]);
        a.cores.push_back(static_cast<int>(v));
        p = (*end == ',') ? end + 1 : end;
      }
      if (a.cores.empty()) UsageAndExit(argv[0]);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      a.json_path = arg + 7;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      // Alias of --json: the BENCH_*.json contract (EXPERIMENTS.md) spells
      // the report path --out=FILE across every bench binary.
      a.json_path = arg + 6;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg);
      UsageAndExit(argv[0]);
    }
  }
  return a;
}

double PerOp(std::uint64_t cycles, std::uint64_t ops) {
  return ops == 0 ? 0.0 : static_cast<double>(cycles) / static_cast<double>(ops);
}

json::Value RowJson(const std::string& workload, int cores,
                    const ndc::runtime::RunResult& r, bool conserved) {
  const ndc::sim::StatSet& st = r.stats;
  json::Value row = json::Value::Object();
  row.obj["workload"] = json::Value::Str(workload);
  row.obj["cores"] = json::Value::Int(static_cast<std::uint64_t>(cores));
  row.obj["makespan"] = json::Value::Int(r.makespan);
  row.obj["events"] = json::Value::Int(r.events);
  json::Value sync = json::Value::Object();
  sync.obj["ops"] = json::Value::Int(st.Get("sync.ops"));
  sync.obj["atomics"] = json::Value::Int(st.Get("sync.atomics_completed"));
  sync.obj["lock_acquires"] = json::Value::Int(st.Get("sync.lock_acquires"));
  sync.obj["barrier_arrivals"] = json::Value::Int(st.Get("sync.barrier_arrivals"));
  sync.obj["posts"] = json::Value::Int(st.Get("sync.posts"));
  sync.obj["waits"] = json::Value::Int(st.Get("sync.waits"));
  sync.obj["stall_cycles"] = json::Value::Int(st.Get("sync.stall_cycles"));
  sync.obj["queue_wait_cycles"] = json::Value::Int(st.Get("sync.queue_wait_cycles"));
  sync.obj["stall_per_op"] =
      json::Value::Double(PerOp(st.Get("sync.stall_cycles"), st.Get("sync.ops")));
  sync.obj["queue_wait_per_op"] =
      json::Value::Double(PerOp(st.Get("sync.queue_wait_cycles"), st.Get("sync.ops")));
  row.obj["sync"] = sync;
  row.obj["conserved"] = json::Value::Bool(conserved);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  SyncArgs args = Parse(argc, argv);
  ndc::arch::ArchConfig cfg;

  std::printf("# Sync contention curve: stall/queue-wait vs active shard count  "
              "(scale=%s, %d-node machine)\n",
              ndc::benchutil::ScaleName(args.scale), cfg.num_nodes());
  std::printf("%-20s %6s %10s %9s %10s %9s %10s %9s  %s\n", "workload", "cores",
              "makespan", "sync.ops", "stall", "stall/op", "qwait", "qwait/op", "ok");

  json::Value rows = json::Value::Array();
  for (const char* w : kSyncWorkloads) {
    if (!args.only.empty() && w != args.only) continue;
    for (int k : args.cores) {
      if (k > cfg.num_nodes()) {
        std::fprintf(stderr, "bench_sync: skipping cores=%d (> %d machine nodes)\n", k,
                     cfg.num_nodes());
        continue;
      }
      ndc::ir::Program prog = ndc::workloads::BuildShardedWorkload(w, args.scale, k);
      std::vector<ndc::arch::Trace> traces =
          ndc::compiler::Lower(prog, cfg.num_nodes(), &cfg).traces;
      ndc::runtime::Machine m(cfg);
      m.LoadProgram(std::move(traces));
      ndc::runtime::RunResult r = m.Run();

      ConservationReport rep = CheckConservation(m.GatherConservation());
      const ndc::sim::StatSet& st = r.stats;
      std::printf("%-20s %6d %10llu %9llu %10llu %9.1f %10llu %9.1f  %s\n", w, k,
                  static_cast<unsigned long long>(r.makespan),
                  static_cast<unsigned long long>(st.Get("sync.ops")),
                  static_cast<unsigned long long>(st.Get("sync.stall_cycles")),
                  PerOp(st.Get("sync.stall_cycles"), st.Get("sync.ops")),
                  static_cast<unsigned long long>(st.Get("sync.queue_wait_cycles")),
                  PerOp(st.Get("sync.queue_wait_cycles"), st.Get("sync.ops")),
                  rep.ok ? "yes" : "NO");
      rows.arr.push_back(RowJson(w, k, r, rep.ok));
      if (!rep.ok) {
        std::fprintf(stderr, "bench_sync: conservation violated (%s, cores=%d):\n%s",
                     w, k, rep.ToString().c_str());
        return 1;
      }
    }
  }

  if (!args.json_path.empty()) {
    json::Value report = json::Value::Object();
    report.obj["bench"] = json::Value::Str("sync");
    report.obj["scale"] = json::Value::Str(ndc::benchutil::ScaleName(args.scale));
    report.obj["machine_nodes"] = json::Value::Int(static_cast<std::uint64_t>(cfg.num_nodes()));
    report.obj["rows"] = rows;
    std::ofstream f(args.json_path);
    if (!f) {
      std::fprintf(stderr, "bench_sync: cannot write %s\n", args.json_path.c_str());
      return 2;
    }
    f << json::Dump(report) << "\n";
  }
  std::printf("\ncontention serializes at the home engine but never loses work: every\n"
              "sync request is eventually granted, every lock acquire pairs with its\n"
              "release, and every barrier arrival departs.\n");
  return 0;
}
