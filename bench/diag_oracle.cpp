// Diagnostic: why does the oracle accept/reject candidates on a benchmark?
// Dumps decision statistics from the profile and the live-run outcome.
//
// Usage: diag_oracle [NAME] [--scale=small]

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "ndc/record.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::ParseSpec pspec;
  pspec.positional_name = true;
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kTest, pspec);
  std::string name = args.positional.empty() ? "md" : args.positional;
  workloads::Scale scale = args.scale;
  arch::ArchConfig cfg;
  noc::Mesh mesh(cfg.mesh_width, cfg.mesh_height);
  metrics::Experiment exp(name, scale, cfg);
  const auto& obs = exp.Observe();

  std::uint64_t total = 0, local = 0, reused = 0, no_loc_win = 0, window_never = 0,
                accept = 0;
  double total_saving = 0;
  std::array<std::uint64_t, 4> accept_loc{};
  obs.records->ForEach([&](const runtime::InstanceRecord& rec) {
    ++total;
    if (rec.local_l1) {
      ++local;
      return;
    }
    if (rec.operand_reused_later) {
      ++reused;
      return;
    }
    sim::Cycle best = 0;
    int best_loc = -1;
    bool any_window = false;
    for (arch::Loc loc : runtime::kTrialOrder) {
      const runtime::LocObs& o = rec.at(loc);
      if (!o.feasible) continue;
      sim::Cycle w = o.Window();
      if (w == sim::kNeverCycle) continue;
      any_window = true;
      sim::Cycle ret = runtime::ResultReturnLatency(mesh, cfg.noc, o.node, rec.core);
      sim::Cycle brk = runtime::BreakevenPoint(rec, loc, 1, ret);
      if (w > brk) continue;
      sim::Cycle ndc_done = o.SecondArrival() + 1 + ret;
      if (rec.conv_done != sim::kNeverCycle && ndc_done + 8 < rec.conv_done) {
        sim::Cycle saving = rec.conv_done - ndc_done;
        if (saving > best) {
          best = saving;
          best_loc = static_cast<int>(loc);
        }
      }
    }
    if (!any_window) {
      ++window_never;
      return;
    }
    if (best_loc < 0) {
      ++no_loc_win;
      return;
    }
    ++accept;
    total_saving += static_cast<double>(best);
    ++accept_loc[static_cast<std::size_t>(best_loc)];
  });

  std::printf("%s: candidates=%llu local=%llu reuse-gated=%llu window-never=%llu "
              "no-win=%llu accept=%llu avg_save=%.1f\n",
              name.c_str(), (unsigned long long)total, (unsigned long long)local,
              (unsigned long long)reused, (unsigned long long)window_never,
              (unsigned long long)no_loc_win, (unsigned long long)accept,
              accept ? total_saving / static_cast<double>(accept) : 0.0);
  std::printf("accepted at: net=%llu cache=%llu mc=%llu mem=%llu\n",
              (unsigned long long)accept_loc[0], (unsigned long long)accept_loc[1],
              (unsigned long long)accept_loc[2], (unsigned long long)accept_loc[3]);

  metrics::SchemeResult orc = exp.Run(metrics::Scheme::kOracle);
  std::printf("oracle live: improvement=%+.2f%% offloads=%llu ndc=%llu fallbacks=%llu\n",
              orc.improvement_pct, (unsigned long long)orc.run.offloads,
              (unsigned long long)orc.run.ndc_success, (unsigned long long)orc.run.fallbacks);
  std::printf("  aborts: timeout=%llu partner_done=%llu service_full=%llu plan_infeasible=%llu\n",
              (unsigned long long)orc.run.stats.Get("ndc.abort.timeout"),
              (unsigned long long)orc.run.stats.Get("ndc.abort.partner_done"),
              (unsigned long long)orc.run.stats.Get("ndc.service_table_full"),
              (unsigned long long)orc.run.stats.Get("ndc.plan_infeasible"));
  std::printf("  baseline=%llu oracle=%llu cycles\n",
              (unsigned long long)exp.Baseline().makespan,
              (unsigned long long)orc.run.makespan);
  return 0;
}
