// Substrate throughput benchmark: events/sec, ns/event, and allocs/event
// for the discrete-event core (calendar EventQueue vs the seed binary-heap
// LegacyEventQueue), plus end-to-end MemCtrl and NoC event streams.
//
// Emits a machine-readable JSON report (default BENCH_substrate.json) that
// CI's substrate-perf job checks against two floors:
//   - speedup_vs_legacy >= --min-speedup (calendar vs seed queue, same box)
//   - allocs_per_event ~= 0 on the pure scheduling benches (the hot
//     ScheduleAfter(small delay) path must not touch the heap)
//
// Allocation counts come from an instrumented global operator new/delete in
// this translation unit, sampled after a warmup pass so one-time pool/bucket
// growth is excluded (steady-state behaviour is what the floor is about).
//
// The report also carries the PDES speedup curve: one full machine run of a
// fig04 grid workload per --sim-threads value in {1, 2, 4, 8} under the
// conservative-window sharded engine, plus "pdes_speedup_4t" (events/sec at
// 4 sim threads over the sequential engine) for CI's --min-pdes-speedup
// floor. --pdes-scale=off skips the curve (e.g. for quick local runs).
//
// Usage: bench_substrate [--events=N] [--out=FILE] [--pdes-scale=test|small|off]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.hpp"
#include "mem/address_map.hpp"
#include "mem/dram.hpp"
#include "mem/memctrl.hpp"
#include "metrics/experiment.hpp"
#include "ndc/machine.hpp"
#include "noc/geometry.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/legacy_event_queue.hpp"
#include "sim/rng.hpp"
#include "workloads/workloads.hpp"

// ---------------------------------------------------------------------------
// Instrumented allocator: every heap allocation in the process bumps a
// counter. Single global, relaxed atomics (the benches are single-threaded;
// atomics just keep the operators formally thread-safe).

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace ndc {
namespace {

using Clock = std::chrono::steady_clock;

struct BenchResult {
  std::string name;
  std::uint64_t events = 0;
  double seconds = 0.0;
  std::uint64_t allocs = 0;

  double events_per_sec() const { return seconds > 0 ? static_cast<double>(events) / seconds : 0; }
  double ns_per_event() const {
    return events > 0 ? seconds * 1e9 / static_cast<double>(events) : 0;
  }
  double allocs_per_event() const {
    return events > 0 ? static_cast<double>(allocs) / static_cast<double>(events) : 0;
  }
};

/// Times `run()` and attributes the executed-event delta and heap
/// allocations inside it to one named result row.
template <typename RunFn, typename ExecutedFn>
BenchResult Measure(const char* name, RunFn&& run, ExecutedFn&& executed) {
  BenchResult r;
  r.name = name;
  std::uint64_t e0 = executed();
  std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  auto t0 = Clock::now();
  run();
  auto t1 = Clock::now();
  r.events = executed() - e0;
  r.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

// --- Pure scheduling: self-rescheduling chains of small-delay events -------
// This is the simulator's hot path (MemCtrl completions, NoC hops): a small
// callback scheduled a few cycles ahead. The functor is 24 bytes, so the
// calendar queue keeps it in the bucket's inline storage.

template <typename Queue>
struct ChainEvent {
  Queue* q;
  std::uint64_t* remaining;
  sim::Cycle delay;
  void operator()() const {
    if (*remaining == 0) return;
    --*remaining;
    q->ScheduleAfter(delay, ChainEvent{q, remaining, delay});
  }
};

template <typename Queue>
BenchResult ChainBench(const char* name, std::uint64_t events) {
  Queue q;
  std::uint64_t remaining = 0;
  auto seed = [&] {
    for (sim::Cycle c = 0; c < 64; ++c) {
      q.ScheduleAfter(1 + c % 13, ChainEvent<Queue>{&q, &remaining, 1 + c % 13});
    }
  };
  remaining = events / 10;  // warmup: grow buckets/pools off the clock
  seed();
  q.RunUntilEmpty();
  remaining = events;
  seed();
  return Measure(name, [&] { q.RunUntilEmpty(); }, [&] { return q.executed(); });
}

// --- Mixed horizon: mostly near events, 1-in-8 beyond the wheel window -----

struct MixedEvent {
  sim::EventQueue* q;
  std::uint64_t* remaining;
  sim::Rng* rng;
  void operator()() const {
    if (*remaining == 0) return;
    --*remaining;
    sim::Cycle d = (rng->Next() & 7) == 0 ? 5000 + rng->NextBelow(20000)
                                          : 1 + rng->NextBelow(32);
    q->ScheduleAfter(d, MixedEvent{q, remaining, rng});
  }
};

BenchResult MixedBench(std::uint64_t events) {
  sim::EventQueue q;
  sim::Rng rng(2021);
  std::uint64_t remaining = 0;
  auto seed = [&] {
    for (sim::Cycle c = 0; c < 64; ++c) {
      q.ScheduleAfter(1 + c % 17, MixedEvent{&q, &remaining, &rng});
    }
  };
  remaining = events / 10;
  seed();
  q.RunUntilEmpty();
  remaining = events;
  seed();
  return Measure("calendar_mixed_horizon", [&] { q.RunUntilEmpty(); },
                 [&] { return q.executed(); });
}

// --- End-to-end component streams ------------------------------------------

BenchResult MemCtrlBench(std::uint64_t requests) {
  mem::AddressMap amap;
  mem::DramParams dram;
  sim::EventQueue eq;
  mem::MemCtrl mc(0, amap, dram, eq);
  sim::Rng rng(7);
  std::uint64_t remaining = 0;
  std::uint64_t next_tag = 1;
  // Closed loop: each completion enqueues another random read, keeping every
  // bank queue busy (the FR-FCFS pick always has material to scan).
  std::function<void(std::uint64_t, sim::Cycle)> done = [&](std::uint64_t, sim::Cycle) {
    if (remaining == 0) return;
    --remaining;
    mc.EnqueueRead(next_tag++, rng.NextBelow(1u << 28) * 64, done);
  };
  auto seed = [&] {
    for (int i = 0; i < 128; ++i) mc.EnqueueRead(next_tag++, rng.NextBelow(1u << 28) * 64, done);
  };
  remaining = requests / 10;
  seed();
  eq.RunUntilEmpty();
  remaining = requests;
  seed();
  return Measure("memctrl_stream", [&] { eq.RunUntilEmpty(); },
                 [&] { return eq.executed(); });
}

BenchResult NocBench(std::uint64_t packets) {
  sim::EventQueue eq;
  noc::Mesh mesh(5, 5);
  noc::Network net(mesh, eq);
  sim::Rng rng(13);
  std::uint64_t remaining = 0;
  // Closed loop: each delivery injects a new random packet.
  std::function<void(const noc::Packet&, sim::Cycle)> deliver =
      [&](const noc::Packet&, sim::Cycle) {
        if (remaining == 0) return;
        --remaining;
        noc::Packet p;
        p.src = static_cast<sim::NodeId>(rng.NextBelow(25));
        p.dst = static_cast<sim::NodeId>(rng.NextBelow(25));
        p.size_bytes = 8 + static_cast<int>(rng.NextBelow(4)) * 8;
        net.Send(std::move(p), deliver);
      };
  auto seed = [&] {
    for (int i = 0; i < 64; ++i) {
      noc::Packet p;
      p.src = static_cast<sim::NodeId>(rng.NextBelow(25));
      p.dst = static_cast<sim::NodeId>(rng.NextBelow(25));
      net.Send(std::move(p), deliver);
    }
  };
  remaining = packets / 10;
  seed();
  eq.RunUntilEmpty();
  remaining = packets;
  seed();
  return Measure("noc_stream", [&] { eq.RunUntilEmpty(); }, [&] { return eq.executed(); });
}

// --- Parallel simulation: conservative-window sharding ---------------------
// One full machine run of the swim stencil (a fig04 grid workload) per
// sim-thread count. Each run builds a fresh machine over the same lowered
// traces; workload build + lowering stay off the clock. The sharded engine
// retires a slightly different event count than the sequential one (a
// different same-cycle tie-break schedule), so each row's events/sec uses
// its own engine's count.

BenchResult PdesBench(const char* name, int sim_threads, workloads::Scale scale) {
  arch::ArchConfig cfg;
  metrics::Experiment e("swim", scale, cfg, 1);
  const std::vector<arch::Trace>& traces = e.BaselineTraces();
  runtime::MachineOptions opts;
  opts.sim_threads = sim_threads;
  runtime::Machine m(cfg, opts);
  m.LoadProgram(traces);
  std::uint64_t events = 0;
  return Measure(name, [&] { events = m.Run().events; }, [&] { return events; });
}

// ---------------------------------------------------------------------------

void WriteJson(const std::string& path, const std::vector<BenchResult>& rows,
               double speedup, double pdes_speedup_4t, std::uint64_t events_target) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_substrate: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_substrate\",\n");
  std::fprintf(f, "  \"events_target\": %llu,\n",
               static_cast<unsigned long long>(events_target));
  // Lets the perf gate tell "the sharded engine is slow" apart from "this
  // box cannot run 4 shard workers in parallel at all".
  std::fprintf(f, "  \"hw_threads\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(f, "  \"speedup_vs_legacy\": %.3f,\n", speedup);
  if (pdes_speedup_4t > 0.0) {
    std::fprintf(f, "  \"pdes_speedup_4t\": %.3f,\n", pdes_speedup_4t);
  }
  std::fprintf(f, "  \"benches\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchResult& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, \"seconds\": %.6f, "
                 "\"events_per_sec\": %.0f, \"ns_per_event\": %.2f, "
                 "\"allocs\": %llu, \"allocs_per_event\": %.6f}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events), r.seconds,
                 r.events_per_sec(), r.ns_per_event(),
                 static_cast<unsigned long long>(r.allocs), r.allocs_per_event(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  std::uint64_t events = 2'000'000;
  std::string out = "BENCH_substrate.json";
  bool pdes = true;
  workloads::Scale pdes_scale = workloads::Scale::kSmall;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--events=", 9) == 0) {
      events = std::strtoull(arg + 9, nullptr, 10);
      if (events == 0) {
        std::fprintf(stderr, "bench_substrate: --events expects a positive integer\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strcmp(arg, "--pdes-scale=test") == 0) {
      pdes_scale = workloads::Scale::kTest;
    } else if (std::strcmp(arg, "--pdes-scale=small") == 0) {
      pdes_scale = workloads::Scale::kSmall;
    } else if (std::strcmp(arg, "--pdes-scale=off") == 0) {
      pdes = false;
    } else {
      std::fprintf(stderr, "usage: %s [--events=N] [--out=FILE] [--pdes-scale=test|small|off]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<BenchResult> rows;
  rows.push_back(ChainBench<sim::EventQueue>("calendar_chain", events));
  rows.push_back(ChainBench<sim::LegacyEventQueue>("legacy_chain", events));
  rows.push_back(MixedBench(events));
  rows.push_back(MemCtrlBench(events / 4));
  rows.push_back(NocBench(events / 8));

  double speedup = rows[1].events_per_sec() > 0
                       ? rows[0].events_per_sec() / rows[1].events_per_sec()
                       : 0.0;

  double pdes_speedup_4t = 0.0;
  if (pdes) {
    double eps_1t = 0.0, eps_4t = 0.0;
    PdesBench("pdes_swim_warmup", 1, pdes_scale);  // page-in + pool growth
    for (int t : {1, 2, 4, 8}) {
      std::string name = "pdes_swim_" + std::to_string(t) + "t";
      BenchResult r = PdesBench(name.c_str(), t, pdes_scale);
      if (t == 1) eps_1t = r.events_per_sec();
      if (t == 4) eps_4t = r.events_per_sec();
      rows.push_back(r);
    }
    if (eps_1t > 0) pdes_speedup_4t = eps_4t / eps_1t;
  }

  std::printf("# bench_substrate  (events=%llu)\n",
              static_cast<unsigned long long>(events));
  std::printf("%-24s %14s %12s %12s %16s\n", "bench", "events", "Mev/s", "ns/event",
              "allocs/event");
  for (const BenchResult& r : rows) {
    std::printf("%-24s %14llu %12.2f %12.2f %16.6f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.events_per_sec() / 1e6,
                r.ns_per_event(), r.allocs_per_event());
  }
  std::printf("speedup_vs_legacy = %.2fx\n", speedup);
  if (pdes) std::printf("pdes_speedup_4t = %.2fx\n", pdes_speedup_4t);
  WriteJson(out, rows, speedup, pdes_speedup_4t, events);
  return 0;
}

}  // namespace
}  // namespace ndc

int main(int argc, char** argv) { return ndc::Main(argc, argv); }
