// Figure 15: fraction of NDC opportunities exercised by Algorithm 2 — the
// remainder is bypassed in favor of data locality (one of the operands has a
// reuse beyond the offloaded computation). Paper average: 81.8%.

#include <cstdio>

#include "bench_common.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall);
  benchutil::PrintHeader("Figure 15: NDC opportunities exercised by Algorithm 2", args);

  std::printf("%-10s %14s %14s %12s\n", "benchmark", "static chains", "dyn. offloads",
              "exercised");
  double sum = 0;
  int n = 0;
  benchutil::ForEachBenchmark(args, [&](const std::string& name) {
    arch::ArchConfig cfg;
    metrics::Experiment exp(name, args.scale, cfg);
    metrics::SchemeResult a1 = exp.Run(metrics::Scheme::kAlgorithm1);
    metrics::SchemeResult a2 = exp.Run(metrics::Scheme::kAlgorithm2);
    // Static view: chains Algorithm 2 kept, of the chains it examined that
    // Algorithm 1 could plan. Dynamic view: offload attempts relative to
    // Algorithm 1's (the superset of exercised opportunities).
    const auto& r1 = a1.compile_report;
    const auto& r2 = a2.compile_report;
    double dyn = a1.run.offloads == 0
                     ? 100.0
                     : 100.0 * static_cast<double>(a2.run.offloads) /
                           static_cast<double>(a1.run.offloads);
    dyn = std::min(dyn, 100.0);
    std::printf("%-10s %8llu/%-5llu %8llu/%-5llu %10.1f%%\n", name.c_str(),
                static_cast<unsigned long long>(r2.planned),
                static_cast<unsigned long long>(r1.planned),
                static_cast<unsigned long long>(a2.run.offloads),
                static_cast<unsigned long long>(a1.run.offloads), dyn);
    if (a1.run.offloads > 0) {
      sum += dyn;
      ++n;
    }
  });
  if (n > 0) std::printf("%-10s %14s %14s %10.1f%%\n", "average", "", "", sum / n);
  std::printf("\npaper: Algorithm 2 exercises 81.8%% of opportunities on average; the rest\n"
              "are bypassed because an operand is reused after the computation.\n");
  return 0;
}
