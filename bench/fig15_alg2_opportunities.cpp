// Figure 15: fraction of NDC opportunities exercised by Algorithm 2 — the
// remainder is bypassed in favor of data locality. Paper average: 81.8%.
//
// Thin wrapper: the grid/render logic lives in src/harness ("fig15").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("fig15", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
