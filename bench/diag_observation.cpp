// Diagnostic: dump per-benchmark observation statistics — candidate counts,
// feasibility, arrival windows, breakevens, and potential per-location
// savings — plus the compiler reports. Not a paper figure; a development
// and debugging aid.
//
// Usage: diag_observation [--scale=test|small] [--bench=NAME]

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "ndc/record.hpp"
#include "sim/stats.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kTest);
  workloads::Scale scale = args.scale;
  std::string only = args.only;
  arch::ArchConfig cfg;
  noc::Mesh mesh(cfg.mesh_width, cfg.mesh_height);

  std::printf("%-10s %8s %7s %7s | %22s | %22s | %12s %12s\n", "bench", "cands", "localL1",
              "withNDC", "feasible% (net/L2/MC/MB)", "win<=brk% (same order)", "avg_save",
              "alg1(plan/chains)");
  for (const std::string& name : workloads::BenchmarkNames()) {
    if (!only.empty() && name != only) continue;
    metrics::Experiment exp(name, scale, cfg);
    const auto& obs = exp.Observe();
    std::uint64_t cands = 0, local = 0;
    std::array<std::uint64_t, 4> feasible{}, winnable{};
    double save_sum = 0;
    std::uint64_t save_n = 0;
    obs.records->ForEach([&](const runtime::InstanceRecord& rec) {
      ++cands;
      if (rec.local_l1) {
        ++local;
        return;
      }
      for (arch::Loc loc : runtime::kTrialOrder) {
        const runtime::LocObs& o = rec.at(loc);
        if (!o.feasible) continue;
        ++feasible[static_cast<std::size_t>(loc)];
        sim::Cycle w = o.Window();
        if (w == sim::kNeverCycle) continue;
        sim::Cycle ret = runtime::ResultReturnLatency(mesh, cfg.noc, o.node, rec.core);
        sim::Cycle brk = runtime::BreakevenPoint(rec, loc, 1, ret);
        if (w <= brk && brk > 0) {
          ++winnable[static_cast<std::size_t>(loc)];
          sim::Cycle ndc_done = o.SecondArrival() + 1 + ret;
          if (rec.conv_done != sim::kNeverCycle && ndc_done < rec.conv_done) {
            save_sum += static_cast<double>(rec.conv_done - ndc_done);
            ++save_n;
          }
        }
      }
    });
    metrics::SchemeResult a1 = exp.Run(metrics::Scheme::kAlgorithm1);
    auto pct = [&](std::uint64_t v) {
      return cands == local ? 0.0
                            : 100.0 * static_cast<double>(v) / static_cast<double>(cands - local);
    };
    std::printf("%-10s %8llu %6.1f%% %7llu | %4.0f/%4.0f/%4.0f/%4.0f%% | %4.0f/%4.0f/%4.0f/%4.0f%% | %10.1f | %llu/%llu ndc=%llu fb=%llu %+5.1f%%\n",
                name.c_str(), static_cast<unsigned long long>(cands),
                cands ? 100.0 * static_cast<double>(local) / static_cast<double>(cands) : 0.0,
                static_cast<unsigned long long>(save_n), pct(feasible[0]), pct(feasible[1]),
                pct(feasible[2]), pct(feasible[3]), pct(winnable[0]), pct(winnable[1]),
                pct(winnable[2]), pct(winnable[3]), save_n ? save_sum / static_cast<double>(save_n) : 0.0,
                static_cast<unsigned long long>(a1.compile_report.planned),
                static_cast<unsigned long long>(a1.compile_report.chains),
                static_cast<unsigned long long>(a1.run.ndc_success),
                static_cast<unsigned long long>(a1.run.fallbacks), a1.improvement_pct);
  }
  return 0;
}
