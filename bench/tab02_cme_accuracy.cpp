// Table 2: L1 and L2 hit/miss estimation accuracy of the Cache Miss
// Equations (CME) estimator, per benchmark (paper averages: L1 81.1%,
// L2 72.9%).
//
// Thin wrapper: the replay/render logic lives in src/harness (RunTab02).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("tab02", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
