// Table 2: L1 and L2 hit/miss estimation accuracy of the Cache Miss
// Equations (CME) estimator, per benchmark (paper averages: L1 81.1%,
// L2 72.9%; the estimator is static and misses coherence/interleaving
// effects).
//
// Methodology: every memory operand access of every nest is replayed
// through functional caches (private L1 per core, shared NUCA L2 banks,
// cores interleaved round-robin as in the parallel execution) and compared
// against the CME's per-access prediction.

#include <cstdio>
#include <memory>

#include "analysis/cme.hpp"
#include "bench_common.hpp"
#include "compiler/codegen.hpp"
#include "mem/address_map.hpp"
#include "mem/cache.hpp"

using namespace ndc;

namespace {

struct Accuracy {
  std::uint64_t l1_correct = 0, l1_total = 0;
  std::uint64_t l2_correct = 0, l2_total = 0;
  double L1() const { return l1_total ? 100.0 * l1_correct / static_cast<double>(l1_total) : 0; }
  double L2() const { return l2_total ? 100.0 * l2_correct / static_cast<double>(l2_total) : 0; }
};

Accuracy Evaluate(const std::string& name, workloads::Scale scale) {
  arch::ArchConfig cfg;
  ir::Program prog = workloads::BuildWorkload(name, scale, 1);
  mem::AddressMap amap = cfg.MakeAddressMap();
  int cores = cfg.num_nodes();

  std::vector<std::unique_ptr<mem::Cache>> l1;
  std::vector<std::unique_ptr<mem::Cache>> l2;
  for (int i = 0; i < cores; ++i) {
    l1.push_back(std::make_unique<mem::Cache>(cfg.l1));
    l2.push_back(std::make_unique<mem::Cache>(cfg.l2));
  }

  Accuracy acc;
  std::set<int> warm;
  for (const ir::LoopNest& nest : prog.nests) {
    analysis::CmePredictor cme(prog, nest, analysis::CacheSpec::From(cfg.l1),
                               analysis::CacheSpec::From(cfg.l2), cores, warm);
    // Interleave cores' iteration streams round-robin, approximating the
    // parallel execution the estimator cannot see (a known error source).
    std::vector<std::vector<ir::IntVec>> per_core(static_cast<std::size_t>(cores));
    nest.ForEachIteration([&](const ir::IntVec& iter) {
      per_core[static_cast<std::size_t>(compiler::CoreForIteration(nest, iter, cores))]
          .push_back(iter);
    });
    std::size_t longest = 0;
    for (const auto& v : per_core) longest = std::max(longest, v.size());
    for (std::size_t j = 0; j < longest; ++j) {
      for (int c = 0; c < cores; ++c) {
        const auto& iters = per_core[static_cast<std::size_t>(c)];
        if (j >= iters.size()) continue;
        const ir::IntVec& iter = iters[j];
        for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
          const ir::Stmt& st = nest.body[static_cast<std::size_t>(s)];
          for (auto sel : {analysis::OperandSel::kRhs0, analysis::OperandSel::kRhs1}) {
            const ir::Operand& op = analysis::SelectOperand(st, sel);
            if (!op.IsMemory()) continue;
            auto addr = prog.ResolveAddr(op, iter);
            if (!addr.has_value()) continue;
            bool pred_l1_miss = cme.PredictMissL1(s, sel, iter);
            bool actual_l1_miss = !l1[static_cast<std::size_t>(c)]->Access(*addr);
            acc.l1_correct += pred_l1_miss == actual_l1_miss;
            ++acc.l1_total;
            if (actual_l1_miss) {
              l1[static_cast<std::size_t>(c)]->Fill(*addr);
              sim::NodeId home = amap.HomeBank(*addr);
              bool pred_l2_miss = cme.PredictMissL2(s, sel, iter);
              bool actual_l2_miss = !l2[static_cast<std::size_t>(home)]->Access(*addr);
              acc.l2_correct += pred_l2_miss == actual_l2_miss;
              ++acc.l2_total;
              if (actual_l2_miss) l2[static_cast<std::size_t>(home)]->Fill(*addr);
            }
          }
        }
      }
    }
    for (const ir::Stmt& st : nest.body) {
      for (const ir::Operand* o : {&st.rhs0, &st.rhs1, &st.lhs}) {
        if (!o->IsMemory()) continue;
        warm.insert(o->kind == ir::Operand::Kind::kIndirect ? o->target_array
                                                            : o->access.array);
      }
    }
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall);
  benchutil::PrintHeader("Table 2: CME hit/miss estimation accuracy", args);

  std::printf("%-10s %8s %8s\n", "benchmark", "L1", "L2");
  double l1_sum = 0, l2_sum = 0;
  int n = 0;
  benchutil::ForEachBenchmark(args, [&](const std::string& name) {
    Accuracy a = Evaluate(name, args.scale);
    std::printf("%-10s %7.1f%% %7.1f%%\n", name.c_str(), a.L1(), a.L2());
    l1_sum += a.L1();
    l2_sum += a.L2();
    ++n;
  });
  if (n > 0) std::printf("%-10s %7.1f%% %7.1f%%\n", "average", l1_sum / n, l2_sum / n);
  std::printf("\npaper averages: L1 81.1%%, L2 72.9%% (misses dominated by effects the\n"
              "static estimator cannot see: cross-thread interleaving at the shared L2,\n"
              "irregular indirection, and conflict-model approximations)\n");
  return 0;
}
