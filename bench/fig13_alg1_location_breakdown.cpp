// Figure 13: distribution of the locations where NDC is performed when the
// code is compiled with Algorithm 1 (paper: network-heavy, then cache and
// memory controller; compare against the oracle's Figure 6).
//
// Thin wrapper: the grid/render logic lives in src/harness ("fig13").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("fig13", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
