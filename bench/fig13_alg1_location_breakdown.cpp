// Figure 13: distribution of the locations where NDC is performed when the
// code is compiled with Algorithm 1 (paper: network-heavy, then cache and
// memory controller; compare against the oracle's Figure 6).

#include <cstdio>

#include "bench_common.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall);
  benchutil::PrintHeader("Figure 13: Algorithm-1 NDC-location breakdown", args);

  std::printf("%-10s %8s %8s %8s %8s   (share of NDC computations)\n", "benchmark", "cache",
              "network", "MC", "memory");
  std::array<double, 4> sum{};
  int n = 0;
  std::uint64_t total_ndc = 0, total_arith = 0;
  benchutil::ForEachBenchmark(args, [&](const std::string& name) {
    arch::ArchConfig cfg;
    metrics::Experiment exp(name, args.scale, cfg);
    metrics::SchemeResult r = exp.Run(metrics::Scheme::kAlgorithm1);
    double total = 0;
    for (std::uint64_t v : r.run.ndc_at_loc) total += static_cast<double>(v);
    auto pct = [&](arch::Loc l) {
      return total == 0 ? 0.0
                        : 100.0 *
                              static_cast<double>(
                                  r.run.ndc_at_loc[static_cast<std::size_t>(l)]) /
                              total;
    };
    double c = pct(arch::Loc::kCacheCtrl), net = pct(arch::Loc::kLinkBuffer),
           mc = pct(arch::Loc::kMemCtrl), mem = pct(arch::Loc::kMemBank);
    std::printf("%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%%   (%llu NDC ops)\n", name.c_str(), c,
                net, mc, mem, static_cast<unsigned long long>(r.run.ndc_success));
    if (total > 0) {
      sum[0] += c;
      sum[1] += net;
      sum[2] += mc;
      sum[3] += mem;
      ++n;
    }
    total_ndc += r.run.ndc_success;
    total_arith += r.run.stats.Get("core.computes") + r.run.stats.Get("core.precomputes");
  });
  if (n > 0) {
    std::printf("%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "average", sum[0] / n, sum[1] / n,
                sum[2] / n, sum[3] / n);
  }
  if (total_arith > 0) {
    std::printf("\nfraction of arithmetic/logic instructions executed near data: %.1f%% "
                "(paper footnote: ~32%%)\n",
                100.0 * static_cast<double>(total_ndc) / static_cast<double>(total_arith));
  }
  std::printf("paper: most Algorithm-1 NDC happens in the network, then cache banks and "
              "MCs; distribution similar to the oracle's (Figure 6)\n");
  return 0;
}
