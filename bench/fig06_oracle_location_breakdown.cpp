// Figure 6: distribution of the hardware locations where the ORACLE scheme
// performs its near-data computations (paper averages: cache 25.9%,
// network 36%, memory controller 21.7%, memory 16.4%).
//
// Thin wrapper: the grid/render logic lives in src/harness ("fig06").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("fig06", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
