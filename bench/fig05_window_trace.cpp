// Figure 5: arrival-window sizes for 30 consecutive executions of a given
// instruction (PC) in ocean and radiosity — the paper's evidence that
// windows are not easily predictable (defeating the Last-Wait predictor).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "ndc/record.hpp"

using namespace ndc;

namespace {

// Consecutive windows of the hottest (core, pc) pair at its first feasible
// location.
std::vector<sim::Cycle> WindowTrace(const std::string& name, workloads::Scale scale,
                                    int want) {
  arch::ArchConfig cfg;
  metrics::Experiment exp(name, scale, cfg);
  const auto& obs = exp.Observe();

  // (core, pc) -> sorted (compute_idx, window) samples
  std::map<std::pair<sim::NodeId, std::uint32_t>,
           std::vector<std::pair<std::uint32_t, sim::Cycle>>>
      by_pc;
  obs.records->ForEach([&](const runtime::InstanceRecord& rec) {
    if (rec.local_l1) return;
    for (arch::Loc loc : runtime::kTrialOrder) {
      const runtime::LocObs& o = rec.at(loc);
      if (!o.feasible) continue;
      by_pc[{rec.core, rec.pc}].push_back({rec.compute_idx, o.Window()});
      break;
    }
  });
  std::vector<std::pair<std::uint32_t, sim::Cycle>>* best = nullptr;
  for (auto& [key, v] : by_pc) {
    if (best == nullptr || v.size() > best->size()) best = &v;
  }
  std::vector<sim::Cycle> out;
  if (best == nullptr) return out;
  std::sort(best->begin(), best->end());
  for (const auto& [idx, w] : *best) {
    out.push_back(w);
    if (static_cast<int>(out.size()) >= want) break;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall);
  benchutil::PrintHeader(
      "Figure 5: 30 consecutive arrival windows of one instruction (ocean, radiosity)",
      args);

  for (const char* name : {"ocean", "radiosity"}) {
    std::vector<sim::Cycle> trace = WindowTrace(name, args.scale, 30);
    std::printf("\n%s (window cycles per consecutive execution; '-' = never met):\n  ",
                name);
    double mean = 0;
    int n = 0;
    for (sim::Cycle w : trace) {
      if (w == sim::kNeverCycle) {
        std::printf("  -");
      } else {
        std::printf(" %3llu", static_cast<unsigned long long>(w));
        mean += static_cast<double>(w);
        ++n;
      }
    }
    // Successive-difference variability: high values = hard to predict.
    double var = 0;
    int dn = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      if (trace[i] == sim::kNeverCycle || trace[i - 1] == sim::kNeverCycle) continue;
      double d = static_cast<double>(trace[i]) - static_cast<double>(trace[i - 1]);
      var += d * d;
      ++dn;
    }
    std::printf("\n  mean=%.1f, successive-diff RMS=%.1f (paper: windows fluctuate "
                "unpredictably; Last-Wait mispredicts)\n",
                n ? mean / n : 0.0, dn ? std::sqrt(var / dn) : 0.0);
  }
  return 0;
}
