// Figure 5: arrival-window sizes for 30 consecutive executions of a given
// instruction (PC) in ocean and radiosity — the paper's evidence that
// windows are not easily predictable (defeating the Last-Wait predictor).
//
// Thin wrapper: the trace logic lives in src/harness (RunFig05).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("fig05", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
