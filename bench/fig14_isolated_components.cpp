// Figure 14: performance improvement when Algorithm 1 targets a single NDC
// location in isolation (via the control register), versus all four.
//
// Paper observation: per-location savings sum to MORE than the all-four
// saving (a computation performed in one location is not repeated in the
// next), and enabling all four locations matters for the best results.

#include <cstdio>

#include "bench_common.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kSmall);
  benchutil::PrintHeader("Figure 14: Algorithm 1 restricted to one component", args);

  struct Config {
    const char* name;
    std::uint8_t mask;
  };
  const Config configs[] = {
      {"cache", arch::LocBit(arch::Loc::kCacheCtrl)},
      {"network", arch::LocBit(arch::Loc::kLinkBuffer)},
      {"MC", arch::LocBit(arch::Loc::kMemCtrl)},
      {"memory", arch::LocBit(arch::Loc::kMemBank)},
      {"all", arch::kAllLocs},
  };

  std::printf("%-10s", "benchmark");
  for (const Config& c : configs) std::printf(" %9s", c.name);
  std::printf("   (improvement %% over baseline)\n");

  std::vector<std::vector<double>> ratios(5);
  benchutil::ForEachBenchmark(args, [&](const std::string& name) {
    arch::ArchConfig cfg;
    metrics::Experiment exp(name, args.scale, cfg);
    std::printf("%-10s", name.c_str());
    std::fflush(stdout);
    for (std::size_t i = 0; i < 5; ++i) {
      compiler::CompileOptions opt;
      opt.mode = compiler::Mode::kAlgorithm1;
      opt.control_register = configs[i].mask;
      metrics::SchemeResult r = exp.RunCompiled(opt);
      std::printf(" %+8.1f%%", r.improvement_pct);
      std::fflush(stdout);
      ratios[i].push_back(static_cast<double>(exp.Baseline().makespan) /
                          static_cast<double>(std::max<sim::Cycle>(1, r.run.makespan)));
    }
    std::printf("\n");
  });
  std::printf("%-10s", "geomean");
  for (std::size_t i = 0; i < 5; ++i) {
    double g = sim::GeometricMean(ratios[i]);
    std::printf(" %+8.1f%%", (1.0 - 1.0 / g) * 100.0);
  }
  std::printf("\n\npaper: exploiting all four locations together is critical; isolated\n"
              "per-location savings sum to more than the combined saving.\n");
  return 0;
}
