// Figure 14: performance improvement when Algorithm 1 targets a single NDC
// location in isolation (via the control register), versus all four.
//
// Thin wrapper: the grid/render logic lives in src/harness ("fig14").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return ndc::benchutil::RunFigureMain("fig14", argc, argv,
                                       ndc::workloads::Scale::kSmall);
}
