// Tool: export the Section-4 observation records of one benchmark as CSV —
// one row per dynamic NDC candidate with its per-location arrival windows,
// breakeven points, conventional completion, and reuse flags. Feed it to
// your plotting tool of choice to regenerate Figures 2/3/5 offline.
//
// Usage: export_records [NAME] [--scale=test|small|full] --all > records.csv
// Without --all only the first 20 rows are printed (keeps batch logs small).

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "ndc/record.hpp"

using namespace ndc;

int main(int argc, char** argv) {
  benchutil::ParseSpec pspec;
  pspec.positional_name = true;
  pspec.allow_all = true;
  benchutil::Args args = benchutil::Parse(argc, argv, workloads::Scale::kTest, pspec);
  std::string name = args.positional.empty() ? "md" : args.positional;
  bool all = args.all;

  arch::ArchConfig cfg;
  noc::Mesh mesh(cfg.mesh_width, cfg.mesh_height);
  metrics::Experiment exp(name, args.scale, cfg);
  const auto& obs = exp.Observe();

  std::printf("core,pc,site,local_l1,reused_l1,reused_l2,conv_done,"
              "net_feasible,net_window,net_breakeven,"
              "cache_feasible,cache_window,cache_breakeven,"
              "mc_feasible,mc_window,mc_breakeven,"
              "mem_feasible,mem_window,mem_breakeven\n");
  std::size_t printed = 0;
  obs.records->ForEach([&](const runtime::InstanceRecord& rec) {
    if (!all && printed >= 20) return;
    ++printed;
    std::printf("%d,%u,%u,%d,%d,%d,%llu", rec.core, rec.pc, rec.site, rec.local_l1 ? 1 : 0,
                rec.operand_reused_later ? 1 : 0, rec.operand_reused_later_l2 ? 1 : 0,
                static_cast<unsigned long long>(rec.conv_done));
    for (arch::Loc loc : runtime::kTrialOrder) {
      const runtime::LocObs& o = rec.at(loc);
      sim::Cycle w = o.Window();
      sim::Cycle ret = runtime::ResultReturnLatency(mesh, cfg.noc, o.node, rec.core);
      sim::Cycle brk = runtime::BreakevenPoint(rec, loc, 1, ret);
      if (w == sim::kNeverCycle) {
        std::printf(",%d,,%llu", o.feasible ? 1 : 0, static_cast<unsigned long long>(brk));
      } else {
        std::printf(",%d,%llu,%llu", o.feasible ? 1 : 0, static_cast<unsigned long long>(w),
                    static_cast<unsigned long long>(brk));
      }
    }
    std::printf("\n");
  });
  std::fflush(stdout);
  std::fprintf(stderr, "exported %zu of %zu records for %s (scale=%s)%s\n", printed,
               obs.records->TotalInstances(), name.c_str(), benchutil::ScaleName(args.scale),
               all ? "" : " — pass --all for the full dump");
  return 0;
}
